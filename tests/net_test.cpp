// Integration and unit tests for the serving layer (src/net + the
// supporting util/socket, util/signal and core/request pieces):
//
//  - wire protocol parsing and error taxonomy
//  - request digest stability (the single-flight / LRU cache key)
//  - ResultCache semantics: LRU hits, admission-time single-flight joins,
//    leader failure fan-out
//  - the full TCP daemon: concurrent clients receiving responses
//    bit-identical to direct core::run_strategy results, ordered
//    pipelined responses, and graceful drain losing zero accepted
//    requests
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/event_loop.hpp"

#include "core/request.hpp"
#include "graph/task_graph.hpp"
#include "net/jsonv.hpp"
#include "net/protocol.hpp"
#include "net/result_cache.hpp"
#include "net/server.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "stg/format.hpp"
#include "stg/random_gen.hpp"
#include "util/errors.hpp"
#include "util/json.hpp"
#include "util/signal.hpp"
#include "util/socket.hpp"

namespace lamps::net {
namespace {

std::string small_stg(std::size_t seed, std::size_t tasks = 24) {
  stg::RandomGraphSpec spec;
  spec.name = "net-test-" + std::to_string(seed);
  spec.num_tasks = tasks;
  spec.seed = seed;
  std::ostringstream os;
  stg::write_stg(stg::generate_random(spec), os);
  return os.str();
}

std::string request_line(const std::string& stg_text, const std::string& strategy,
                         const std::string& id_json) {
  std::ostringstream os;
  os << "{\"id\":" << id_json << ",\"stg\":";
  write_json_string(os, stg_text);
  os << ",\"strategy\":";
  write_json_string(os, strategy);
  os << "}\n";
  return os.str();
}

TEST(Protocol, ParsesInlineRequestAndResolvesDeadline) {
  const power::PowerModel model;
  const ParsedRequest p =
      parse_schedule_request(request_line(small_stg(1), "LAMPS", "\"r-1\""), model);
  EXPECT_EQ(p.id_json, "\"r-1\"");
  EXPECT_EQ(p.request.strategy, core::StrategyKind::kLamps);
  EXPECT_GT(p.request.graph.num_tasks(), 0U);
  EXPECT_GT(p.request.deadline.value(), 0.0);  // 2x CPL at f_max by default
}

TEST(Protocol, RejectsMalformedRequests) {
  const power::PowerModel model;
  const std::string stg_text = small_stg(1);
  // not JSON
  EXPECT_THROW((void)parse_schedule_request("hello", model), InputError);
  // neither stg nor file
  EXPECT_THROW((void)parse_schedule_request("{\"strategy\":\"LAMPS\"}", model),
               InputError);
  // both stg and file
  {
    std::ostringstream os;
    os << "{\"stg\":";
    write_json_string(os, stg_text);
    os << ",\"file\":\"x.stg\"}";
    EXPECT_THROW((void)parse_schedule_request(os.str(), model), InputError);
  }
  // unknown strategy
  EXPECT_THROW(
      (void)parse_schedule_request(request_line(stg_text, "BOGUS", "1"), model),
      InputError);
  // invalid deadline factor
  {
    std::ostringstream os;
    os << "{\"stg\":";
    write_json_string(os, stg_text);
    os << ",\"deadline_factor\":-1}";
    EXPECT_THROW((void)parse_schedule_request(os.str(), model), InputError);
  }
}

TEST(Protocol, ResultJsonIsFlatAndExtractableFromResponses) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const ParsedRequest p =
      parse_schedule_request(request_line(small_stg(2), "LAMPS+PS", "7"), model);
  const std::string payload =
      result_json(core::run_service_request(p.request, model, ladder), ladder);
  EXPECT_EQ(payload.find('{'), 0U);
  EXPECT_EQ(payload.find('}'), payload.size() - 1);  // flat: single closing brace

  const std::string response = ok_response("7", payload, false, 1.25);
  EXPECT_EQ(extract_result_json(response), payload);
  const JsonValue doc = JsonValue::parse(response);
  EXPECT_TRUE(doc.get("ok")->as_bool());
  EXPECT_DOUBLE_EQ(doc.get("id")->as_number(), 7.0);
  EXPECT_TRUE(doc.get("result")->get("feasible")->is_bool());
  EXPECT_GE(doc.get("result")->get_number("energy_j", -1.0), 0.0);
}

TEST(RequestDigest, IdenticalRequestsCollideDifferentOnesDoNot) {
  const power::PowerModel model;
  const std::string stg_text = small_stg(3);
  const ParsedRequest a =
      parse_schedule_request(request_line(stg_text, "LAMPS", "1"), model);
  const ParsedRequest b =
      parse_schedule_request(request_line(stg_text, "LAMPS", "2"), model);
  EXPECT_EQ(core::service_request_digest(a.request),
            core::service_request_digest(b.request));  // id is not part of the key

  const ParsedRequest other_strategy =
      parse_schedule_request(request_line(stg_text, "S&S", "1"), model);
  EXPECT_NE(core::service_request_digest(a.request),
            core::service_request_digest(other_strategy.request));

  const ParsedRequest other_graph =
      parse_schedule_request(request_line(small_stg(4), "LAMPS", "1"), model);
  EXPECT_NE(core::service_request_digest(a.request),
            core::service_request_digest(other_graph.request));

  core::ServiceRequest tighter = a.request;
  tighter.deadline = Seconds{a.request.deadline.value() * 0.5};
  EXPECT_NE(core::service_request_digest(a.request),
            core::service_request_digest(tighter));
}

struct Delivery {
  std::string payload;
  bool cached{false};
  std::string error;
  int calls{0};
};

ResultCache::Consumer record_into(Delivery& d) {
  return [&d](const std::string& payload, bool cached, const std::string& error) {
    d.payload = payload;
    d.cached = cached;
    d.error = error;
    ++d.calls;
  };
}

TEST(ResultCacheTest, LeaderComputesFollowersJoinInFlight) {
  const auto& reg = obs::Registry::global();
  const std::uint64_t joins_before = reg.counter_value("serve.singleflight_hits");

  ResultCache cache(4);
  Delivery leader, follower1, follower2;
  // Admission-time single flight: the window is open from subscribe() to
  // complete(), covering queueing — the property the 1-CPU CI box relies
  // on to ever observe a join.
  ASSERT_TRUE(cache.subscribe(42, record_into(leader)));
  EXPECT_FALSE(cache.subscribe(42, record_into(follower1)));
  EXPECT_FALSE(cache.subscribe(42, record_into(follower2)));
  EXPECT_EQ(leader.calls, 0);  // nothing delivered until the leader finishes

  cache.complete(42, "payload-42");
  EXPECT_EQ(leader.calls, 1);
  EXPECT_EQ(leader.payload, "payload-42");
  EXPECT_FALSE(leader.cached);
  EXPECT_EQ(follower1.calls, 1);
  EXPECT_TRUE(follower1.cached);
  EXPECT_EQ(follower1.payload, "payload-42");
  EXPECT_TRUE(follower2.cached);

  // Completed entries are LRU hits, delivered inline.
  Delivery late;
  EXPECT_FALSE(cache.subscribe(42, record_into(late)));
  EXPECT_EQ(late.calls, 1);
  EXPECT_TRUE(late.cached);
  EXPECT_EQ(late.payload, "payload-42");

  EXPECT_EQ(reg.counter_value("serve.singleflight_hits"), joins_before + 2);
}

TEST(ResultCacheTest, LeaderFailureFansOutAndIsNotCached) {
  ResultCache cache(4);
  Delivery leader, follower;
  ASSERT_TRUE(cache.subscribe(7, record_into(leader)));
  EXPECT_FALSE(cache.subscribe(7, record_into(follower)));
  cache.fail(7, "boom");
  EXPECT_EQ(leader.error, "boom");
  EXPECT_EQ(follower.error, "boom");
  EXPECT_EQ(cache.size(), 0U);

  // The failure was not cached: the next subscriber becomes a new leader.
  Delivery retry;
  EXPECT_TRUE(cache.subscribe(7, record_into(retry)));
  cache.complete(7, "ok");
  EXPECT_EQ(retry.payload, "ok");
}

TEST(ResultCacheTest, LruEvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  Delivery d;
  ASSERT_TRUE(cache.subscribe(1, record_into(d)));
  cache.complete(1, "one");
  ASSERT_TRUE(cache.subscribe(2, record_into(d)));
  cache.complete(2, "two");
  EXPECT_FALSE(cache.subscribe(1, record_into(d)));  // refresh key 1
  ASSERT_TRUE(cache.subscribe(3, record_into(d)));   // evicts key 2
  cache.complete(3, "three");
  EXPECT_EQ(cache.size(), 2U);
  EXPECT_FALSE(cache.subscribe(1, record_into(d)));  // still cached
  EXPECT_TRUE(cache.subscribe(2, record_into(d)));   // evicted -> new leader
  cache.fail(2, "abandon");
}

TEST(DrainSignal, RequestAndResetRoundTrip) {
  const int fd = install_drain_signal_handlers();
  ASSERT_GE(fd, 0);
  EXPECT_EQ(fd, drain_signal_fd());
  reset_drain_signal_for_testing();
  EXPECT_FALSE(drain_signal_pending());
  EXPECT_EQ(poll_readable(fd, -1, 0), 0U);
  request_drain_signal();
  EXPECT_TRUE(drain_signal_pending());
  EXPECT_EQ(poll_readable(fd, -1, 0), 1U);
  reset_drain_signal_for_testing();
  EXPECT_FALSE(drain_signal_pending());
  EXPECT_EQ(poll_readable(fd, -1, 0), 0U);
}

TEST(ServeIntegration, ConcurrentClientsGetBitIdenticalResults) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);

  // 4 graphs x 2 strategies; each of the 32 clients sends one of the 8
  // distinct requests, so the cache and single-flight paths both serve
  // some of them — and every response must still be byte-identical to the
  // direct computation.
  const std::vector<std::string> graphs = {small_stg(10), small_stg(11), small_stg(12),
                                           small_stg(13)};
  const std::vector<std::string> strategies = {"LAMPS+PS", "S&S"};
  std::vector<std::string> lines;
  std::vector<std::string> expected;
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      const std::string id = std::to_string(g * strategies.size() + s);
      lines.push_back(request_line(graphs[g], strategies[s], id));
      const ParsedRequest parsed = parse_schedule_request(lines.back(), model);
      expected.push_back(
          result_json(core::run_service_request(parsed.request, model, ladder), ladder));
    }
  }

  ServerConfig cfg;
  cfg.threads = 4;
  // All 32 clients burst at once; this test is about bit-exactness, not
  // shedding, so the admission queue must hold the whole burst.
  cfg.max_pending = 64;
  Server server(cfg);
  server.start();
  ASSERT_GT(server.port(), 0);

  constexpr std::size_t kClients = 32;
  std::vector<std::string> responses(kClients);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        const Socket sock = connect_tcp(server.port());
        if (!sock.send_all(lines[c % lines.size()])) {
          failures.fetch_add(1);
          return;
        }
        LineReader reader(sock.fd());
        if (reader.read_line(responses[c]) != LineReader::Status::kLine)
          failures.fetch_add(1);
      });
    }
    for (auto& t : clients) t.join();
  }
  server.request_drain();
  server.wait();

  EXPECT_EQ(failures.load(), 0);
  for (std::size_t c = 0; c < kClients; ++c) {
    SCOPED_TRACE("client " + std::to_string(c));
    const JsonValue doc = JsonValue::parse(responses[c]);
    EXPECT_TRUE(doc.get("ok")->as_bool()) << responses[c];
    EXPECT_EQ(extract_result_json(responses[c]), expected[c % expected.size()]);
  }
}

TEST(ServeIntegration, PipelinedRequestsAnswerInOrderIncludingErrors) {
  ServerConfig cfg;
  cfg.threads = 2;
  Server server(cfg);
  server.start();

  const std::string stg_text = small_stg(20);
  std::string batch;
  batch += request_line(stg_text, "LAMPS", "\"a\"");
  batch += "this is not json\n";
  batch += request_line(stg_text, "LAMPS", "\"b\"");

  const Socket sock = connect_tcp(server.port());
  ASSERT_TRUE(sock.send_all(batch));
  LineReader reader(sock.fd());
  std::string r1, r2, r3;
  ASSERT_EQ(reader.read_line(r1), LineReader::Status::kLine);
  ASSERT_EQ(reader.read_line(r2), LineReader::Status::kLine);
  ASSERT_EQ(reader.read_line(r3), LineReader::Status::kLine);
  EXPECT_EQ(JsonValue::parse(r1).get("id")->as_string(), "a");
  EXPECT_FALSE(JsonValue::parse(r2).get("ok")->as_bool());
  EXPECT_EQ(JsonValue::parse(r2).get_string("error", ""), "bad_request");
  EXPECT_EQ(JsonValue::parse(r3).get("id")->as_string(), "b");
  // The identical request "b" was served from cache or single flight —
  // either way its result matches "a"'s byte for byte.
  EXPECT_EQ(extract_result_json(r3), extract_result_json(r1));

  server.request_drain();
  server.wait();
}

TEST(ServeIntegration, OverloadShedsWithExplicitBackpressureResponse) {
  ServerConfig cfg;
  cfg.threads = 1;
  cfg.max_pending = 1;
  Server server(cfg);
  server.start();

  // 10 distinct pipelined requests against a single worker and a pending
  // bound of one: admission outruns the computes, so most requests must be
  // shed with an explicit "overloaded" error instead of queueing unboundedly.
  std::string batch;
  for (std::size_t i = 0; i < 10; ++i)
    batch += request_line(small_stg(50 + i), "LAMPS", std::to_string(i));
  const Socket sock = connect_tcp(server.port());
  ASSERT_TRUE(sock.send_all(batch));

  LineReader reader(sock.fd());
  std::size_t ok = 0;
  std::size_t shed = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    std::string line;
    ASSERT_EQ(reader.read_line(line), LineReader::Status::kLine);
    const JsonValue doc = JsonValue::parse(line);
    if (doc.get("ok")->as_bool()) {
      ++ok;
    } else {
      EXPECT_EQ(doc.get_string("error", ""), "overloaded") << line;
      ++shed;
    }
  }
  server.request_drain();
  server.wait();
  EXPECT_GE(ok, 1U);    // the admitted head of the pipeline completes
  EXPECT_GE(shed, 1U);  // and the burst beyond the bound is refused loudly
  EXPECT_EQ(ok + shed, 10U);
}

TEST(ServeIntegration, DrainLosesZeroAcceptedRequests) {
  const auto& reg = obs::Registry::global();
  ServerConfig cfg;
  cfg.threads = 2;
  cfg.max_pending = 64;  // roomy: this test is about drain, not shedding
  Server server(cfg);
  server.start();

  // Several connections, several pipelined requests each, all written
  // before the drain begins: the drain contract is that every one of them
  // is answered before the daemon finishes.
  constexpr std::size_t kConns = 4;
  constexpr std::size_t kPerConn = 5;
  const std::uint64_t accepted_before = reg.counter_value("serve.connections_total");
  std::vector<Socket> socks;
  for (std::size_t c = 0; c < kConns; ++c) {
    socks.push_back(connect_tcp(server.port()));
    std::string batch;
    for (std::size_t i = 0; i < kPerConn; ++i)
      batch += request_line(small_stg(30 + i), "LAMPS+PS",
                            "\"" + std::to_string(c) + "-" + std::to_string(i) + "\"");
    ASSERT_TRUE(socks.back().send_all(batch));
  }
  // The TCP handshake completes in the kernel backlog before the server's
  // accept loop runs; only *accepted* connections are covered by the drain
  // contract, so wait until all four were picked up.
  while (reg.counter_value("serve.connections_total") < accepted_before + kConns)
    std::this_thread::yield();

  server.request_drain();
  EXPECT_TRUE(server.draining());

  // New connections must be refused while existing ones drain.  The
  // accept loop closes the listener as soon as its poll wakes; allow it
  // that one scheduling round trip.
  bool refused = false;
  for (int attempt = 0; attempt < 200 && !refused; ++attempt) {
    try {
      (void)connect_tcp(server.port());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    } catch (const InternalError&) {
      refused = true;
    }
  }
  EXPECT_TRUE(refused);

  std::size_t answered = 0;
  for (auto& sock : socks) {
    LineReader reader(sock.fd());
    std::string line;
    while (reader.read_line(line) == LineReader::Status::kLine) {
      EXPECT_TRUE(JsonValue::parse(line).get("ok")->as_bool()) << line;
      ++answered;
    }
  }
  server.wait();
  EXPECT_EQ(answered, kConns * kPerConn);
  EXPECT_EQ(reg.counter_value("serve.requests_total") -
                reg.counter_value("serve.requests_bad_request") -
                reg.counter_value("serve.requests_overloaded") -
                reg.counter_value("serve.requests_internal_error"),
            reg.counter_value("serve.requests_ok"));
}

TEST(Protocol, ParsesAdminRequestsAndIgnoresScheduleLines) {
  // Bare-word form, whitespace-tolerant.
  for (const auto& [word, cmd] :
       {std::pair<const char*, AdminCommand>{"statsz", AdminCommand::kStatsz},
        {"healthz", AdminCommand::kHealthz},
        {"cachez", AdminCommand::kCachez},
        {"flightz", AdminCommand::kFlightz},
        {"quitquitquit", AdminCommand::kQuit}}) {
    const auto req = parse_admin_request(std::string("  ") + word + " \r");
    ASSERT_TRUE(req.has_value()) << word;
    EXPECT_EQ(req->cmd, cmd);
    EXPECT_EQ(req->id_json, "null");
    EXPECT_STREQ(to_string(req->cmd), word);
  }

  // JSON form carries an id (echoed verbatim) and a flightz limit.
  const auto req =
      parse_admin_request("{\"cmd\":\"flightz\",\"id\":\"scrape-9\",\"limit\":2}");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->cmd, AdminCommand::kFlightz);
  EXPECT_EQ(req->id_json, "\"scrape-9\"");
  EXPECT_EQ(req->limit, 2U);

  // Schedule requests — including ones that merely *mention* "cmd" inside
  // a string — fall through to the normal request path.
  EXPECT_FALSE(parse_admin_request(request_line(small_stg(1), "LAMPS", "1")));
  EXPECT_FALSE(parse_admin_request("{\"id\":1,\"note\":\"a \\\"cmd\\\" string\"}"));

  // Admin-shaped but invalid lines fail loudly instead of being computed.
  EXPECT_THROW((void)parse_admin_request("{\"cmd\":\"bogus\"}"), InputError);
  EXPECT_THROW((void)parse_admin_request("{\"cmd\":\"flightz\",\"limit\":0}"),
               InputError);
  EXPECT_THROW((void)parse_admin_request("{\"cmd\":\"flightz\",\"limit\":100000}"),
               InputError);
}

TEST(ServeIntegration, AdminLaneAnswersAllCommandsWhilePoolIsSaturated) {
  ServerConfig cfg;
  cfg.threads = 1;  // one worker: a pipelined batch keeps it busy for a while
  cfg.max_pending = 64;  // roomy: the whole batch must queue, not shed
  Server server(cfg);
  server.start();

  // Conn B first, so the admin lane is ready before the backlog window
  // opens.
  const Socket admin = connect_tcp(server.port());
  LineReader admin_reader(admin.fd());

  // Conn A: two large "plug" requests occupy the single worker for tens of
  // milliseconds each (compute outgrows parse superlinearly), while small
  // requests pile up behind them — a real, long-lived backlog.
  const Socket work = connect_tcp(server.port());
  std::string batch;
  constexpr std::size_t kWork = 8;
  batch += request_line(small_stg(70, /*tasks=*/3000), "LAMPS+PS", "0");
  batch += request_line(small_stg(71, /*tasks=*/3000), "LAMPS+PS", "1");
  for (std::size_t i = 2; i < kWork; ++i)
    batch += request_line(small_stg(70 + i), "LAMPS+PS", std::to_string(i));
  ASSERT_TRUE(work.send_all(batch));

  // In-process: wait until the backlog is deep before scraping.
  obs::Gauge& pending = obs::gauge("serve.pending");
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (pending.value() < static_cast<std::int64_t>(kWork) / 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "never observed a compute backlog";
    std::this_thread::yield();
  }
  const auto query = [&](const std::string& line) {
    EXPECT_TRUE(admin.send_all(line + "\n"));
    std::string response;
    EXPECT_EQ(admin_reader.read_line(response), LineReader::Status::kLine);
    const JsonValue doc = JsonValue::parse(response);
    EXPECT_TRUE(doc.get("ok")->as_bool()) << response;
    return doc;
  };

  const JsonValue health = query("healthz");
  EXPECT_EQ(health.get_string("cmd", ""), "healthz");
  EXPECT_GE(health.get_number("pending", 0.0), 1.0);  // scraped mid-backlog
  EXPECT_DOUBLE_EQ(health.get_number("pool_size", 0.0), 1.0);
  EXPECT_FALSE(health.get("draining")->as_bool());

  const JsonValue stats = query("statsz");
  EXPECT_EQ(stats.get_string("cmd", ""), "statsz");
  ASSERT_NE(stats.get("metrics"), nullptr);
  ASSERT_NE(stats.get("deltas"), nullptr);
  EXPECT_GE(stats.get("metrics")->get("counters")->get_number(
                "serve.requests_total", 0.0),
            1.0);

  // A second scrape's deltas cover only what moved since the first.
  const JsonValue stats2 = query("{\"cmd\":\"statsz\",\"id\":\"s2\"}");
  EXPECT_EQ(stats2.get_string("id", ""), "s2");
  EXPECT_GT(stats2.get_number("scrape_seq", 0.0),
            stats.get_number("scrape_seq", 0.0));

  const JsonValue cache = query("cachez");
  ASSERT_NE(cache.get("result_cache"), nullptr);
  EXPECT_GT(cache.get("result_cache")->get_number("capacity", 0.0), 0.0);
  ASSERT_NE(cache.get("schedule_bank"), nullptr);

  const JsonValue flights = query("{\"cmd\":\"flightz\",\"limit\":4}");
  ASSERT_NE(flights.get("records"), nullptr);
  EXPECT_LE(flights.get("records")->items().size(), 4U);
  EXPECT_GT(flights.get_number("capacity", 0.0), 0.0);

  // The batch itself is unharmed by the scrapes.
  LineReader work_reader(work.fd());
  for (std::size_t i = 0; i < kWork; ++i) {
    std::string line;
    ASSERT_EQ(work_reader.read_line(line), LineReader::Status::kLine);
    const JsonValue doc = JsonValue::parse(line);
    EXPECT_TRUE(doc.get("ok")->as_bool() ||
                doc.get_string("error", "") == "overloaded")
        << line;
  }
  server.request_drain();
  server.wait();
}

TEST(ServeIntegration, ResponsesStayBitIdenticalWithFullTelemetryOn) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);

  std::vector<std::string> lines;
  std::vector<std::string> expected;
  for (std::size_t g = 0; g < 4; ++g) {
    const std::string stg_text = small_stg(80 + g);
    for (const char* strategy : {"LAMPS+PS", "S&S"}) {
      lines.push_back(request_line(stg_text, strategy,
                                   std::to_string(lines.size())));
      const ParsedRequest parsed = parse_schedule_request(lines.back(), model);
      expected.push_back(result_json(
          core::run_service_request(parsed.request, model, ladder), ladder));
    }
  }

  // Every telemetry feature on and turned up: a tiny flight ring (forced
  // wraparound), promotion of *every* request to a slow-request span dump,
  // a fast metrics flusher, and structured logging — none of it may change
  // a single response byte.
  std::atomic<std::size_t> samples{0};
  ServerConfig cfg;
  cfg.threads = 2;
  cfg.max_pending = 64;
  cfg.flight_capacity = 4;
  cfg.slow_request_s = 1e-9;
  cfg.metrics_interval_s = 0.02;
  cfg.metrics_hook = [&samples](const std::string&) { samples.fetch_add(1); };

  std::ostringstream log_sink;  // keep the promoted warn records off stderr
  obs::set_log_sink(&log_sink);
  obs::set_structured_logging(true);

  Server server(cfg);
  server.start();
  const Socket sock = connect_tcp(server.port());
  std::string batch;
  for (const std::string& line : lines) batch += line;
  batch += batch;  // send the set twice: cache hits must also be identical
  ASSERT_TRUE(sock.send_all(batch));

  LineReader reader(sock.fd());
  for (std::size_t i = 0; i < 2 * lines.size(); ++i) {
    std::string response;
    ASSERT_EQ(reader.read_line(response), LineReader::Status::kLine);
    EXPECT_EQ(extract_result_json(response), expected[i % expected.size()])
        << "request " << i;
  }
  server.request_drain();
  server.wait();
  obs::set_structured_logging(false);
  obs::set_log_sink(nullptr);

  EXPECT_GE(samples.load(), 1U);  // the flusher ran (stop() emits a final one)
  EXPECT_GE(server.flights().total_recorded(), 2 * lines.size());
  EXPECT_EQ(server.flights().last(100).size(), 4U);  // the ring wrapped

  // Every promoted span dump is a parseable structured record.
  std::istringstream log_lines(log_sink.str());
  std::string log_line;
  std::size_t promoted = 0;
  while (std::getline(log_lines, log_line)) {
    const JsonValue doc = JsonValue::parse(log_line);
    if (doc.get_string("event", "") == "serve.slow_request") ++promoted;
  }
  EXPECT_GE(promoted, 2 * lines.size());
}

TEST(ServeIntegration, QuitQuitQuitDrainsTheDaemon) {
  reset_drain_signal_for_testing();
  ServerConfig cfg;
  cfg.threads = 1;
  Server server(cfg);
  server.start();

  const Socket sock = connect_tcp(server.port());
  ASSERT_TRUE(sock.send_all("quitquitquit\n"));
  LineReader reader(sock.fd());
  std::string response;
  ASSERT_EQ(reader.read_line(response), LineReader::Status::kLine);
  const JsonValue doc = JsonValue::parse(response);
  EXPECT_TRUE(doc.get("ok")->as_bool());
  EXPECT_EQ(doc.get_string("cmd", ""), "quitquitquit");
  EXPECT_TRUE(doc.get("draining")->as_bool());

  // The daemon actually drains — wait() returns instead of blocking.
  server.wait();
  EXPECT_TRUE(server.draining());
  // quitquitquit also pulses the process drain signal (so a CLI wrapper
  // waiting on it wakes up); clear it for later tests.
  EXPECT_TRUE(drain_signal_pending());
  reset_drain_signal_for_testing();
}

TEST(ServeIntegration, DrainDuringAScrapeLoopEndsCleanly) {
  ServerConfig cfg;
  cfg.threads = 1;
  Server server(cfg);
  server.start();

  // A monitoring client scrapes in a tight loop while the daemon is told
  // to drain out from under it: every response it *does* receive must be
  // well-formed, and the connection must end with a clean EOF, not a hang.
  std::atomic<std::size_t> scrapes{0};
  std::atomic<bool> clean_end{false};
  std::thread scraper([&] {
    const Socket sock = connect_tcp(server.port());
    LineReader reader(sock.fd());
    for (int i = 0; i < 100000; ++i) {
      if (!sock.send_all("statsz\n")) break;
      std::string line;
      if (reader.read_line(line) != LineReader::Status::kLine) break;
      const JsonValue parsed = JsonValue::parse(line);
      EXPECT_TRUE(parsed.get("ok")->as_bool());
      scrapes.fetch_add(1);
    }
    clean_end.store(true);
  });

  while (scrapes.load() < 20) std::this_thread::yield();
  server.request_drain();
  server.wait();
  scraper.join();
  EXPECT_TRUE(clean_end.load());
  EXPECT_GE(scrapes.load(), 20U);
}

// ---------------------------------------------------------------------------
// TimerWheel (the event loop's read/idle/write-stall clock carrier)

TEST(TimerWheelTest, FiresByDeadlineNotArmOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  (void)wheel.arm(500'000'000, [&] { fired.push_back(2); });  // 500 ms
  (void)wheel.arm(5'000'000, [&] { fired.push_back(1); });    // 5 ms
  EXPECT_EQ(wheel.armed(), 2U);

  EXPECT_EQ(wheel.advance(6'000'000), 1U);  // only the 5 ms timer is due
  EXPECT_EQ(fired, std::vector<int>({1}));
  EXPECT_EQ(wheel.advance(400'000'000), 0U);  // 400 ms: still not due
  EXPECT_EQ(wheel.advance(501'000'000), 1U);
  EXPECT_EQ(fired, std::vector<int>({1, 2}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, CancelIsANoOpAfterFiringAndPreventsFiring) {
  TimerWheel wheel;
  int fired = 0;
  const std::uint64_t keep = wheel.arm(10'000'000, [&] { ++fired; });
  const std::uint64_t drop = wheel.arm(10'000'000, [&] { ++fired; });
  wheel.cancel(drop);
  EXPECT_EQ(wheel.armed(), 1U);
  EXPECT_EQ(wheel.advance(20'000'000), 1U);
  EXPECT_EQ(fired, 1);
  wheel.cancel(keep);  // already fired: no-op
  wheel.cancel(99'999);  // never existed: no-op
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, FarDeadlinesSurviveFullWheelRotations) {
  // Default geometry is 512 slots x 10 ms = 5.12 s per rotation; a 12 s
  // deadline hashes onto a bucket that is visited twice before it is due.
  TimerWheel wheel;
  int fired = 0;
  (void)wheel.arm(12'000'000'000, [&] { ++fired; });
  std::int64_t now = 0;
  while (now < 11'000'000'000) {  // sweep in quarter-rotation steps
    now += 1'280'000'000;
    EXPECT_EQ(wheel.advance(now), 0U) << "fired early at " << now;
  }
  EXPECT_EQ(wheel.advance(12'010'000'000), 1U);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, CallbacksMayArmAndCancelOtherTimers) {
  TimerWheel wheel;
  std::vector<int> fired;
  std::uint64_t victim = 0;
  (void)wheel.arm(10'000'000, [&] {
    fired.push_back(1);
    wheel.cancel(victim);  // cancel a peer that is not yet due
    (void)wheel.arm(30'000'000, [&] { fired.push_back(3); });  // chain a new one
  });
  victim = wheel.arm(20'000'000, [&] { fired.push_back(2); });
  EXPECT_EQ(wheel.advance(15'000'000), 1U);
  EXPECT_EQ(wheel.advance(25'000'000), 0U);  // victim was cancelled
  EXPECT_EQ(wheel.advance(35'000'000), 1U);
  EXPECT_EQ(fired, std::vector<int>({1, 3}));
}

// ---------------------------------------------------------------------------
// Socket deadline semantics

TEST(SocketDeadline, SendAllDeadlineIsCumulativeUnderDripDrain) {
  // A peer draining a trickle keeps every individual poll making
  // "progress", so a per-poll timeout would never trip — the deadline
  // must be anchored once at entry and shrink across retries.
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  int small = 4096;
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof small);
  ::setsockopt(sv[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof small);
  Socket writer(sv[0]);

  std::atomic<bool> stop{false};
  std::thread dripper([&] {
    char sink[512];
    while (!stop.load()) {
      (void)::recv(sv[1], sink, sizeof sink, MSG_DONTWAIT);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  const std::string payload(4u << 20, 'x');  // far beyond the drip rate
  const auto t0 = std::chrono::steady_clock::now();
  const Socket::SendStatus status = writer.send_all_deadline(payload, 250);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stop.store(true);
  dripper.join();
  ::close(sv[1]);

  EXPECT_EQ(status, Socket::SendStatus::kTimeout);
  EXPECT_GE(elapsed_s, 0.2);  // the budget was actually granted...
  EXPECT_LT(elapsed_s, 2.0);  // ...and not re-granted per poll round
}

// ---------------------------------------------------------------------------
// Event-loop serving plane

TEST(ServeIntegration, ThreadCountIsIndependentOfConnectionCount) {
  const auto thread_count = [] {
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& entry :
         std::filesystem::directory_iterator("/proc/self/task"))
      ++n;
    return n;
  };
  const auto& reg = obs::Registry::global();
  ServerConfig cfg;
  cfg.threads = 2;
  Server server(cfg);
  server.start();
  const std::size_t baseline = thread_count();

  constexpr std::size_t kConns = 32;
  const std::uint64_t accepted_before = reg.counter_value("serve.connections_total");
  std::vector<Socket> socks;
  socks.reserve(kConns);
  for (std::size_t i = 0; i < kConns; ++i) socks.push_back(connect_tcp(server.port()));
  while (reg.counter_value("serve.connections_total") < accepted_before + kConns)
    std::this_thread::yield();

  // The event loop absorbs all 32 connections without spawning anything.
  EXPECT_EQ(thread_count(), baseline);

  // And they are all live: each one gets a scrape answered.
  for (auto& sock : socks) {
    ASSERT_TRUE(sock.send_all("healthz\n"));
    LineReader reader(sock.fd());
    std::string line;
    ASSERT_EQ(reader.read_line(line), LineReader::Status::kLine);
    EXPECT_TRUE(JsonValue::parse(line).get("ok")->as_bool());
  }
  socks.clear();
  server.request_drain();
  server.wait();
}

TEST(ServeIntegration, ConcurrentStatszScrapersSeeTelescopingDeltas) {
  // Counter deltas are relative to a per-server baseline map.  When
  // scrapers race, each scrape must still account every increment exactly
  // once: summing "serve.requests_total" deltas over ALL scrapes (the
  // baseline starts empty, so the first one is absolute) has to land
  // exactly on the registry's absolute counter value once traffic stops.
  // A snapshot taken outside the baseline lock breaks this: two racing
  // scrapers can assign baselines out of order and double-count.
  const auto& reg = obs::Registry::global();
  ServerConfig cfg;
  cfg.threads = 2;
  cfg.max_pending = 64;
  Server server(cfg);
  server.start();

  std::atomic<bool> load_done{false};
  std::thread requester([&] {
    const Socket sock = connect_tcp(server.port());
    LineReader reader(sock.fd());
    for (std::size_t i = 0; i < 40; ++i) {
      if (!sock.send_all(request_line(small_stg(70 + i % 4, 12), "LAMPS",
                                      std::to_string(i))))
        break;
      std::string line;
      if (reader.read_line(line) != LineReader::Status::kLine) break;
    }
    load_done.store(true);
  });

  constexpr std::size_t kScrapers = 4;
  std::vector<double> summed(kScrapers, 0.0);
  std::atomic<int> malformed{0};
  {
    std::vector<std::thread> scrapers;
    for (std::size_t s = 0; s < kScrapers; ++s) {
      scrapers.emplace_back([&, s] {
        const Socket sock = connect_tcp(server.port());
        LineReader reader(sock.fd());
        // Scrape flat out until the load finishes so the windows overlap
        // heavily across the racing scrapers.
        while (!load_done.load()) {
          if (!sock.send_all("statsz\n")) {
            malformed.fetch_add(1);
            return;
          }
          std::string line;
          if (reader.read_line(line) != LineReader::Status::kLine) {
            malformed.fetch_add(1);
            return;
          }
          const JsonValue doc = JsonValue::parse(line);
          summed[s] += doc.get("deltas")->get_number("serve.requests_total", 0.0);
        }
      });
    }
    for (auto& t : scrapers) t.join();
  }
  requester.join();
  ASSERT_EQ(malformed.load(), 0);

  // One quiescent scrape collects whatever the racing ones left behind.
  double total = 0.0;
  for (const double part : summed) total += part;
  {
    const Socket sock = connect_tcp(server.port());
    ASSERT_TRUE(sock.send_all("statsz\n"));
    LineReader reader(sock.fd());
    std::string line;
    ASSERT_EQ(reader.read_line(line), LineReader::Status::kLine);
    total += JsonValue::parse(line).get("deltas")->get_number(
        "serve.requests_total", 0.0);
  }
  EXPECT_EQ(static_cast<std::uint64_t>(total),
            reg.counter_value("serve.requests_total"));

  server.request_drain();
  server.wait();
}

TEST(ServeIntegration, SlowReaderIsDisconnectedWithinWriteBudget) {
  const auto& reg = obs::Registry::global();
  ServerConfig cfg;
  cfg.threads = 1;
  cfg.max_pending = 8;
  cfg.max_write_queue = 0;     // the stall clock, not the queue bound, must trip
  cfg.write_timeout_s = 0.25;  // cumulative per-response budget
  cfg.sndbuf_bytes = 4096;     // tiny kernel buffer so the stall is reachable
  Server server(cfg);
  server.start();

  const std::string line = request_line(small_stg(80), "LAMPS", "1");

  // Warm the result cache so the pipelined burst below resolves instantly
  // and the test exercises only the write path.
  {
    const Socket sock = connect_tcp(server.port());
    ASSERT_TRUE(sock.send_all(line));
    LineReader reader(sock.fd());
    std::string warm;
    ASSERT_EQ(reader.read_line(warm), LineReader::Status::kLine);
    ASSERT_TRUE(JsonValue::parse(warm).get("ok")->as_bool());
  }

  const std::uint64_t slow_before =
      reg.counter_value("serve.slow_client_disconnects");

  // A client with a tiny receive window that pipelines a burst far larger
  // than both socket buffers, then drains one byte per 50 ms: its
  // cumulative progress can never finish a response inside the budget.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcv = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcv, sizeof rcv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  Socket slow(fd);
  std::string burst;
  for (int i = 0; i < 100; ++i) burst += line;
  ASSERT_TRUE(slow.send_all(burst));

  // Drip-read one byte per 50 ms until the server gives up on us.  The
  // disconnect is observed server-side (the counter), because the bytes
  // already sitting in our receive buffer would hide the close from
  // recv() for minutes at this drain rate.
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed_s = 0.0;
  bool counted = false;
  for (int i = 0; i < 400 && !counted; ++i) {  // hard cap: 400 x 50 ms = 20 s
    char byte = 0;
    (void)::recv(fd, &byte, 1, MSG_DONTWAIT);
    elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    counted = reg.counter_value("serve.slow_client_disconnects") >= slow_before + 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(counted);
  EXPECT_LT(elapsed_s, 2.0);  // well within ~2x the 0.25 s budget

  // Once the buffered bytes are drained at full speed the close is
  // visible client-side too (EOF or reset, depending on unread data).
  bool disconnected = false;
  for (int i = 0; i < 10'000; ++i) {
    char sink[4096];
    const ssize_t n = ::recv(fd, sink, sizeof sink, 0);
    if (n <= 0) {
      disconnected = true;
      break;
    }
  }
  EXPECT_TRUE(disconnected);

  server.request_drain();
  server.wait();
}

}  // namespace
}  // namespace lamps::net
