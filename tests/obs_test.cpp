// Unit tests for the observability layer (src/obs): Chrome trace-event
// export shape, histogram bucket math, metric registry export, concurrent
// counter updates, and the search-telemetry JSON format.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace lamps::obs {
namespace {

/// Replaces the run-dependent numbers ("ts", "dur", "tid") with fixed
/// placeholders so the trace shape can be compared against a golden file.
std::string normalize_trace(const std::string& json) {
  std::string out = std::regex_replace(json, std::regex{R"#("ts":[0-9]+\.[0-9]{3})#"},
                                       "\"ts\":T");
  out = std::regex_replace(out, std::regex{R"#("dur":[0-9]+\.[0-9]{3})#"}, "\"dur\":T");
  out = std::regex_replace(out, std::regex{R"#("tid":[0-9]+)#"}, "\"tid\":N");
  return out;
}

TEST(TraceTest, GoldenChromeTraceShape) {
  set_tracing_enabled(true);
  clear_trace();
  {
    Span outer("golden/outer");
    Span inner("golden/inner");
  }
  set_tracing_enabled(false);
  ASSERT_EQ(trace_span_count(), 2U);

  std::ostringstream ss;
  write_chrome_trace(ss);
  clear_trace();

  // "X" complete events sorted by start time: the enclosing span first
  // (it starts earlier; on a start-time tie the longer duration wins).
  const std::string golden =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"golden/outer\",\"cat\":\"lamps\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":N,\"ts\":T,\"dur\":T},\n"
      "{\"name\":\"golden/inner\",\"cat\":\"lamps\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":N,\"ts\":T,\"dur\":T}\n"
      "]}\n";
  EXPECT_EQ(normalize_trace(ss.str()), golden);
}

TEST(TraceTest, DisabledTracingRecordsNothing) {
  set_tracing_enabled(false);
  clear_trace();
  {
    Span s("never/recorded");
    Span t("also/never");
  }
  EXPECT_EQ(trace_span_count(), 0U);
}

TEST(TraceTest, SpanOpenAcrossDisableIsStillRecorded) {
  clear_trace();
  set_tracing_enabled(true);
  {
    Span s("closes/after-disable");
    set_tracing_enabled(false);
  }
  EXPECT_EQ(trace_span_count(), 1U);
  clear_trace();
}

TEST(TraceTest, SpansFromMultipleThreadsAreExported) {
  set_tracing_enabled(true);
  clear_trace();
  {
    Span main_span("threads/main");
    std::thread worker([] { Span s("threads/worker"); });
    worker.join();
  }
  set_tracing_enabled(false);
  EXPECT_EQ(trace_span_count(), 2U);

  std::ostringstream ss;
  write_chrome_trace(ss);
  clear_trace();
  const std::string json = ss.str();
  EXPECT_NE(json.find("threads/main"), std::string::npos);
  EXPECT_NE(json.find("threads/worker"), std::string::npos);
}

TEST(HistogramTest, BucketMath) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.num_buckets(), 4U);
  // Inclusive upper bounds: v lands in the first bucket with v <= top.
  EXPECT_EQ(h.bucket_index(0.5), 0U);
  EXPECT_EQ(h.bucket_index(1.0), 0U);
  EXPECT_EQ(h.bucket_index(1.5), 1U);
  EXPECT_EQ(h.bucket_index(2.0), 1U);
  EXPECT_EQ(h.bucket_index(4.0), 2U);
  EXPECT_EQ(h.bucket_index(4.5), 3U);  // overflow
  EXPECT_EQ(h.upper_bound(0), 1.0);
  EXPECT_EQ(h.upper_bound(2), 4.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(3)));

  for (const double v : {0.5, 1.5, 3.0, 5.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4U);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_EQ(h.bucket_count(0), 1U);
  EXPECT_EQ(h.bucket_count(1), 1U);
  EXPECT_EQ(h.bucket_count(2), 1U);
  EXPECT_EQ(h.bucket_count(3), 1U);

  EXPECT_EQ(h.quantile_upper_bound(0.25), 1.0);
  EXPECT_EQ(h.quantile_upper_bound(0.5), 2.0);
  EXPECT_EQ(h.quantile_upper_bound(0.75), 4.0);
  EXPECT_TRUE(std::isinf(h.quantile_upper_bound(1.0)));

  h.reset();
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0.0);
}

TEST(HistogramTest, NanGoesToOverflowBucketAndNotIntoSum) {
  Histogram h({1.0, 2.0});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Regression: NaN compares false against every bound, so the old
  // lower_bound classification silently filed it in bucket 0 and poisoned
  // sum() for the rest of the process.
  EXPECT_EQ(h.bucket_index(nan), 2U);
  h.observe(0.5);
  h.observe(nan);
  h.observe(nan);
  EXPECT_EQ(h.count(), 3U);
  EXPECT_EQ(h.bucket_count(0), 1U);
  EXPECT_EQ(h.bucket_count(2), 2U);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5);  // NaN observations are excluded
  EXPECT_FALSE(std::isnan(h.quantile_upper_bound(0.5)));
}

TEST(HistogramTest, InfinitiesCountAtTheEdgesAndFlowIntoSum) {
  Histogram h({1.0, 2.0});
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(h.bucket_index(inf), 2U);
  EXPECT_EQ(h.bucket_index(-inf), 0U);
  h.observe(inf);
  h.observe(-inf);
  EXPECT_EQ(h.count(), 2U);
  EXPECT_EQ(h.bucket_count(0), 1U);
  EXPECT_EQ(h.bucket_count(2), 1U);
  EXPECT_TRUE(std::isnan(h.sum()));  // +inf + -inf; the JSON export emits null
}

TEST(MetricsTest, JsonExportEmitsNullForNonFiniteSum) {
  Registry r;
  Histogram& h = r.histogram("inf.lat", {1.0});
  h.observe(std::numeric_limits<double>::infinity());
  std::ostringstream ss;
  r.write_json(ss);
  EXPECT_NE(ss.str().find("\"sum\": null"), std::string::npos) << ss.str();
}

TEST(HistogramTest, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram::exponential_bounds(0.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram::exponential_bounds(1.0, 1.0, 4), std::invalid_argument);
}

TEST(HistogramTest, ExponentialBounds) {
  const std::vector<double> b = Histogram::exponential_bounds(1e-6, 4.0, 3);
  ASSERT_EQ(b.size(), 3U);
  EXPECT_DOUBLE_EQ(b[0], 1e-6);
  EXPECT_DOUBLE_EQ(b[1], 4e-6);
  EXPECT_DOUBLE_EQ(b[2], 1.6e-5);
}

TEST(MetricsTest, ConcurrentCounterIncrements) {
  Counter& c = counter("obs_test.concurrent");
  c.reset();
  Histogram& h = histogram("obs_test.concurrent_hist",
                           Histogram::exponential_bounds(1.0, 2.0, 8));
  h.reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIncsPerThread = 100'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h, t] {
      for (std::size_t i = 0; i < kIncsPerThread; ++i) {
        c.inc();
        if (i % 100 == 0) h.observe(static_cast<double>(t));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kIncsPerThread);
  EXPECT_EQ(h.count(), kThreads * kIncsPerThread / 100);
}

TEST(MetricsTest, GaugeTracksValueAndHighWater) {
  Gauge g;
  g.set(2);
  g.add(3);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.max_value(), 5);
  g.add(-4);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max_value(), 5);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 0);
}

TEST(MetricsTest, RegistryJsonExport) {
  Registry r;
  r.counter("a.count").inc(3);
  Gauge& g = r.gauge("b.depth");
  g.set(2);
  g.set(1);
  Histogram& h = r.histogram("c.lat", {1.0, 2.0});
  h.observe(0.5);
  h.observe(3.0);

  std::ostringstream ss;
  r.write_json(ss);
  const std::string golden =
      "{\n"
      "  \"counters\": {\n"
      "    \"a.count\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"b.depth\": {\"value\": 1, \"max\": 2}\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"c.lat\": {\"count\": 2, \"sum\": 3.5, \"buckets\": "
      "[{\"le\": 1, \"count\": 1}, {\"le\": 2, \"count\": 0}, "
      "{\"le\": \"inf\", \"count\": 1}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(ss.str(), golden);
}

TEST(MetricsTest, RegistryCsvExport) {
  Registry r;
  r.counter("a.count").inc(3);
  Gauge& g = r.gauge("b.depth");
  g.set(2);
  g.set(1);
  Histogram& h = r.histogram("c.lat", {1.0, 2.0});
  h.observe(0.5);
  h.observe(3.0);

  std::ostringstream ss;
  r.write_csv(ss);
  const std::string golden =
      "kind,name,field,value\n"
      "counter,a.count,value,3\n"
      "gauge,b.depth,value,1\n"
      "gauge,b.depth,max,2\n"
      "histogram,c.lat,count,2\n"
      "histogram,c.lat,sum,3.5\n"
      "histogram,c.lat,le_1,1\n"
      "histogram,c.lat,le_2,0\n"
      "histogram,c.lat,le_inf,1\n";
  EXPECT_EQ(ss.str(), golden);
}

TEST(MetricsTest, CounterValueOfUnknownNameIsZero) {
  const Registry r;
  EXPECT_EQ(r.counter_value("never.registered"), 0U);
}

TEST(TelemetryTest, GoldenJson) {
  SearchTelemetry tel;
  tel.strategy = "LAMPS+PS";
  tel.feasible = true;
  tel.chosen_procs = 3;
  tel.chosen_level = 7;
  tel.energy_total_j = 0.25;
  tel.energy_dynamic_j = 0.125;
  tel.energy_leakage_j = 0.0625;
  tel.energy_intrinsic_j = 0.03125;
  tel.energy_sleep_j = 0.015625;
  tel.energy_wakeup_j = 0.0;
  tel.shutdowns = 2;
  tel.schedules_computed = 5;
  SearchProbe p1;
  p1.num_procs = 4;
  p1.phase = "phase1";
  p1.action = "graham-upper";
  p1.feasible = 1;
  tel.probes.push_back(p1);
  SearchProbe p2;
  p2.num_procs = 3;
  p2.phase = "phase2";
  p2.action = "profile-eval";
  p2.makespan = 1000;
  p2.feasible = 1;
  p2.level_index = 7;
  p2.energy_j = 0.25;
  p2.chosen = true;
  tel.probes.push_back(p2);

  std::ostringstream ss;
  write_telemetry_json(ss, {tel});
  const std::string golden =
      "[\n"
      "{\"strategy\": \"LAMPS+PS\",\n"
      " \"feasible\": true, \"chosen_procs\": 3, \"chosen_level\": 7,\n"
      " \"energy_j\": {\"total\": 0.25, \"dynamic\": 0.125, \"leakage\": 0.0625, "
      "\"intrinsic\": 0.03125, \"sleep\": 0.015625, \"wakeup\": 0},\n"
      " \"shutdowns\": 2, \"schedules_computed\": 5,\n"
      " \"probes\": [\n"
      "  {\"procs\": 4, \"phase\": \"phase1\", \"action\": \"graham-upper\", "
      "\"makespan\": -1, \"feasible\": 1, \"level\": -1, \"energy_j\": -1, "
      "\"chosen\": false},\n"
      "  {\"procs\": 3, \"phase\": \"phase2\", \"action\": \"profile-eval\", "
      "\"makespan\": 1000, \"feasible\": 1, \"level\": 7, \"energy_j\": 0.25, "
      "\"chosen\": true}\n"
      " ]}\n"
      "]\n";
  EXPECT_EQ(ss.str(), golden);
}

TEST(MetricsTest, GaugeResetMaxKeepsValueAndReArmsHighWater) {
  Gauge g;
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max_value(), 7);  // high-water survives the drop

  g.reset_max();
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max_value(), 3);  // re-armed at the *current* level, not 0

  g.set(5);
  EXPECT_EQ(g.max_value(), 5);  // and it keeps tracking new peaks
}

TEST(MetricsTest, CounterSnapshotSeesEveryRegisteredCounter) {
  Counter& a = counter("snaptest.alpha");
  Counter& b = counter("snaptest.beta");
  a.inc(11);
  b.inc(2);
  const std::map<std::string, std::uint64_t> snap =
      Registry::global().counter_snapshot();
  ASSERT_TRUE(snap.count("snaptest.alpha"));
  ASSERT_TRUE(snap.count("snaptest.beta"));
  EXPECT_EQ(snap.at("snaptest.alpha"), a.value());
  EXPECT_EQ(snap.at("snaptest.beta"), b.value());
  EXPECT_EQ(Registry::global().counter_value("snaptest.alpha"), a.value());
  EXPECT_EQ(Registry::global().counter_value("snaptest.never_registered"), 0U);
}

TEST(MetricsTest, CompactJsonIsOneLineAndMatchesThePrettyDocument) {
  counter("compacttest.events").inc(4);
  gauge("compacttest.level").set(9);
  histogram("compacttest.lat", {0.1, 1.0}).observe(0.05);

  std::ostringstream compact;
  Registry::global().write_json_compact(compact);
  const std::string line = compact.str();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"compacttest.events\":4"), std::string::npos);
  EXPECT_NE(line.find("\"compacttest.level\""), std::string::npos);
  EXPECT_NE(line.find("\"compacttest.lat\""), std::string::npos);
  EXPECT_NE(line.find("\"counters\""), std::string::npos);
  EXPECT_NE(line.find("\"gauges\""), std::string::npos);
  EXPECT_NE(line.find("\"histograms\""), std::string::npos);
}

TEST(TraceTest, SpanRingIsBoundedAndCountsDrops) {
  const std::size_t saved = trace_capacity();
  set_trace_capacity(16);
  const std::uint64_t dropped_before =
      Registry::global().counter_value("trace.dropped_spans");

  set_tracing_enabled(true);
  clear_trace();
  for (int i = 0; i < 100; ++i) {
    Span s("bounded-span");
  }
  set_tracing_enabled(false);

  EXPECT_LE(trace_span_count(), 16U);
  const std::uint64_t dropped =
      Registry::global().counter_value("trace.dropped_spans") - dropped_before;
  EXPECT_GE(dropped, 100U - 16U);

  set_trace_capacity(saved);
  clear_trace();
}

}  // namespace
}  // namespace lamps::obs
