// Structured task-graph family tests: sizes, shapes, critical paths and
// parallelism of the classic families.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "stg/structured.hpp"

namespace lamps::stg {
namespace {

using graph::TaskGraph;

TEST(Structured, GaussianEliminationShape) {
  const std::size_t n = 6;
  const TaskGraph g = gaussian_elimination(n, 2, 1);
  // n-1 pivots + sum_{k=0}^{n-2} (n-1-k) updates = 5 + (5+4+3+2+1).
  EXPECT_EQ(g.num_tasks(), 5u + 15u);
  // One source (first pivot), narrowing fronts.
  EXPECT_EQ(g.sources().size(), 1u);
  // Critical path: alternating pivot/update chain = (n-1)*(2+1).
  EXPECT_EQ(graph::critical_path_length(g), 15u);
  EXPECT_GT(graph::average_parallelism(g), 1.0);
  EXPECT_LT(graph::average_parallelism(g), static_cast<double>(n));
}

TEST(Structured, GaussianEliminationRejectsTiny) {
  EXPECT_THROW((void)gaussian_elimination(1), std::invalid_argument);
}

TEST(Structured, FftButterflyShape) {
  const TaskGraph g = fft_butterfly(3, 1);  // n = 8, 3 ranks
  EXPECT_EQ(g.num_tasks(), 8u * 4u);        // inputs + 3 ranks
  // Every non-input node has exactly 2 predecessors.
  for (graph::TaskId v = 8; v < g.num_tasks(); ++v) EXPECT_EQ(g.in_degree(v), 2u);
  // Constant width: parallelism = n * (stages+1) / (stages+1) = 8.
  EXPECT_DOUBLE_EQ(graph::average_parallelism(g), 8.0);
  EXPECT_EQ(graph::critical_path_length(g), 4u);
  EXPECT_EQ(graph::asap_max_concurrency(g), 8u);
}

TEST(Structured, TreesAreMirrors) {
  const TaskGraph out = out_tree(4, 3);
  const TaskGraph in = in_tree(4, 3);
  EXPECT_EQ(out.num_tasks(), 15u);
  EXPECT_EQ(in.num_tasks(), 15u);
  EXPECT_EQ(out.num_edges(), 14u);
  EXPECT_EQ(in.num_edges(), 14u);
  EXPECT_EQ(out.sources().size(), 1u);
  EXPECT_EQ(out.sinks().size(), 8u);
  EXPECT_EQ(in.sources().size(), 8u);
  EXPECT_EQ(in.sinks().size(), 1u);
  EXPECT_EQ(graph::critical_path_length(out), 4u * 3u);
  EXPECT_EQ(graph::critical_path_length(in), 4u * 3u);
}

TEST(Structured, DivideAndConquerForkJoin) {
  const TaskGraph g = divide_and_conquer(3, 1, 4);
  // Split tree 7 + merge tree 7.
  EXPECT_EQ(g.num_tasks(), 14u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  // CPL: 2 splits + leaf(4) + leaf-merge(0) + 2 merges = 1+1+4+0+1+1 = 8.
  EXPECT_EQ(graph::critical_path_length(g), 8u);
  // 4 leaves can run in parallel.
  EXPECT_GE(graph::asap_max_concurrency(g), 4u);
}

TEST(Structured, WavefrontGrid) {
  const TaskGraph g = wavefront(4, 3, 2);
  EXPECT_EQ(g.num_tasks(), 12u);
  // Edges: (w-1)*h horizontal + w*(h-1) vertical.
  EXPECT_EQ(g.num_edges(), 3u * 3u + 4u * 2u);
  // CPL: monotone path of length w + h - 1 cells.
  EXPECT_EQ(graph::critical_path_length(g), (4u + 3u - 1u) * 2u);
  // Peak wavefront width = min(w, h).
  EXPECT_EQ(graph::asap_max_concurrency(g), 3u);
}

TEST(Structured, WavefrontDegenerateIsChain) {
  const TaskGraph g = wavefront(5, 1, 1);
  EXPECT_DOUBLE_EQ(graph::average_parallelism(g), 1.0);
}

TEST(Structured, AllFamiliesValidateAsDags) {
  // build() throws on any cycle; instantiating is the check.
  EXPECT_NO_THROW((void)gaussian_elimination(10));
  EXPECT_NO_THROW((void)fft_butterfly(5));
  EXPECT_NO_THROW((void)out_tree(6));
  EXPECT_NO_THROW((void)in_tree(6));
  EXPECT_NO_THROW((void)divide_and_conquer(5));
  EXPECT_NO_THROW((void)wavefront(8, 8));
}

TEST(Structured, RejectsOutOfRangeParameters) {
  EXPECT_THROW((void)fft_butterfly(0), std::invalid_argument);
  EXPECT_THROW((void)fft_butterfly(25), std::invalid_argument);
  EXPECT_THROW((void)out_tree(0), std::invalid_argument);
  EXPECT_THROW((void)in_tree(30), std::invalid_argument);
  EXPECT_THROW((void)divide_and_conquer(0), std::invalid_argument);
  EXPECT_THROW((void)wavefront(0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace lamps::stg
