// Thread-count determinism of the parallel configuration searches: the
// LAMPS phase-2 fan-out and processor_sweep must return bit-identical
// results (energy fields, chosen processor count, level, completion time,
// placements, and even the invocation count) at any search_threads
// setting, because each slot depends only on its own processor count and
// the argmin reduction runs serially in ascending order.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "core/lamps.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "stg/suite.hpp"

namespace lamps::core {
namespace {

const power::PowerModel& model() {
  static const power::PowerModel m;
  return m;
}
const power::DvsLadder& ladder() {
  static const power::DvsLadder l{model()};
  return l;
}

Problem make_problem(const graph::TaskGraph& g, double factor) {
  Problem prob;
  prob.graph = &g;
  prob.model = &model();
  prob.ladder = &ladder();
  prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                          model().max_frequency().value() * factor};
  return prob;
}

void expect_identical_results(const StrategyResult& a, const StrategyResult& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.num_procs, b.num_procs);
  EXPECT_EQ(a.level_index, b.level_index);
  EXPECT_EQ(a.schedules_computed, b.schedules_computed);
  EXPECT_EQ(a.completion.value(), b.completion.value());
  EXPECT_EQ(a.breakdown.dynamic.value(), b.breakdown.dynamic.value());
  EXPECT_EQ(a.breakdown.leakage.value(), b.breakdown.leakage.value());
  EXPECT_EQ(a.breakdown.intrinsic.value(), b.breakdown.intrinsic.value());
  EXPECT_EQ(a.breakdown.sleep.value(), b.breakdown.sleep.value());
  EXPECT_EQ(a.breakdown.wakeup.value(), b.breakdown.wakeup.value());
  EXPECT_EQ(a.breakdown.shutdowns, b.breakdown.shutdowns);
  ASSERT_EQ(a.schedule.has_value(), b.schedule.has_value());
  if (a.schedule.has_value()) {
    const sched::Schedule& sa = *a.schedule;
    const sched::Schedule& sb = *b.schedule;
    ASSERT_EQ(sa.num_procs(), sb.num_procs());
    ASSERT_EQ(sa.num_tasks(), sb.num_tasks());
    for (sched::ProcId p = 0; p < sa.num_procs(); ++p) {
      const auto ra = sa.on_proc(p);
      const auto rb = sb.on_proc(p);
      ASSERT_EQ(ra.size(), rb.size());
      for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].task, rb[i].task);
        EXPECT_EQ(ra[i].start, rb[i].start);
        EXPECT_EQ(ra[i].finish, rb[i].finish);
      }
    }
  }
}

TEST(SweepDeterminismTest, LampsIdenticalAcrossThreadCounts) {
  for (const auto& g0 : stg::make_random_group(500, 2)) {
    const graph::TaskGraph g = graph::scale_weights(g0, stg::kCoarseGrainCyclesPerUnit);
    for (const bool with_ps : {false, true}) {
      Problem prob = make_problem(g, 2.0);
      std::vector<StrategyResult> results;
      for (const std::size_t threads : {1UL, 2UL, 8UL}) {
        prob.search_threads = threads;
        results.push_back(with_ps ? lamps_schedule_ps(prob) : lamps_schedule(prob));
      }
      expect_identical_results(results[0], results[1]);
      expect_identical_results(results[0], results[2]);
      EXPECT_TRUE(results[0].feasible);
    }
  }
}

TEST(SweepDeterminismTest, ProcessorSweepIdenticalAcrossThreadCounts) {
  const auto group = stg::make_random_group(200, 1);
  const graph::TaskGraph g = graph::scale_weights(group[0], stg::kCoarseGrainCyclesPerUnit);
  for (const bool with_ps : {false, true}) {
    Problem prob = make_problem(g, 2.0);
    std::vector<std::vector<SweepPoint>> sweeps;
    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
      prob.search_threads = threads;
      sweeps.push_back(processor_sweep(prob, 24, with_ps));
    }
    for (std::size_t t = 1; t < sweeps.size(); ++t) {
      ASSERT_EQ(sweeps[0].size(), sweeps[t].size());
      for (std::size_t i = 0; i < sweeps[0].size(); ++i) {
        EXPECT_EQ(sweeps[0][i].num_procs, sweeps[t][i].num_procs);
        EXPECT_EQ(sweeps[0][i].makespan, sweeps[t][i].makespan);
        EXPECT_EQ(sweeps[0][i].feasible, sweeps[t][i].feasible);
        EXPECT_EQ(sweeps[0][i].level_index, sweeps[t][i].level_index);
        EXPECT_EQ(sweeps[0][i].energy.value(), sweeps[t][i].energy.value());
      }
    }
  }
}

void expect_identical_telemetry(const obs::SearchTelemetry& a,
                                const obs::SearchTelemetry& b) {
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.chosen_procs, b.chosen_procs);
  EXPECT_EQ(a.chosen_level, b.chosen_level);
  EXPECT_EQ(a.energy_total_j, b.energy_total_j);
  EXPECT_EQ(a.schedules_computed, b.schedules_computed);
  ASSERT_EQ(a.probes.size(), b.probes.size());
  for (std::size_t i = 0; i < a.probes.size(); ++i) {
    EXPECT_EQ(a.probes[i].num_procs, b.probes[i].num_procs);
    EXPECT_STREQ(a.probes[i].phase, b.probes[i].phase);
    EXPECT_STREQ(a.probes[i].action, b.probes[i].action);
    EXPECT_EQ(a.probes[i].makespan, b.probes[i].makespan);
    EXPECT_EQ(a.probes[i].feasible, b.probes[i].feasible);
    EXPECT_EQ(a.probes[i].level_index, b.probes[i].level_index);
    EXPECT_EQ(a.probes[i].energy_j, b.probes[i].energy_j);
    EXPECT_EQ(a.probes[i].chosen, b.probes[i].chosen);
  }
}

// The acceptance bar for the observability layer: spans, metrics and
// telemetry are observation-only, so enabling all of them must leave
// every result bit-identical to the dark run at any thread count.
TEST(SweepDeterminismTest, ObservabilityOnOffBitIdentical) {
  const auto group = stg::make_random_group(400, 1);
  const graph::TaskGraph g = graph::scale_weights(group[0], stg::kCoarseGrainCyclesPerUnit);
  for (const StrategyKind kind :
       {StrategyKind::kLamps, StrategyKind::kLampsPs, StrategyKind::kSnsPs}) {
    std::vector<obs::SearchTelemetry> records;
    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
      Problem prob = make_problem(g, 2.0);
      prob.search_threads = threads;
      const StrategyResult dark = run_strategy(kind, prob);

      obs::SearchTelemetry tel;
      tel.strategy = to_string(kind);
      prob.telemetry = &tel;
      obs::set_tracing_enabled(true);
      const StrategyResult observed = run_strategy(kind, prob);
      obs::set_tracing_enabled(false);
      prob.telemetry = nullptr;

      expect_identical_results(dark, observed);
      EXPECT_FALSE(tel.probes.empty());
      records.push_back(std::move(tel));
    }
    // The telemetry record itself is also thread-count deterministic.
    expect_identical_telemetry(records[0], records[1]);
    expect_identical_telemetry(records[0], records[2]);
  }
  EXPECT_GT(obs::trace_span_count(), 0U);
  obs::clear_trace();
}

// The live telemetry plane extends the same bar: structured logging (with
// a redirected sink and the filter wide open) and an actively-promoting
// flight recorder run *alongside* the search without perturbing a single
// bit of its output.  The log/flight machinery is process-global state
// shared with the serve daemon, so this is the cheap in-process proof of
// the byte-exactness contract the loadgen gate checks over the wire.
TEST(SweepDeterminismTest, LoggingAndFlightRecorderOnOffBitIdentical) {
  const auto group = stg::make_random_group(400, 1);
  const graph::TaskGraph g = graph::scale_weights(group[0], stg::kCoarseGrainCyclesPerUnit);
  for (const StrategyKind kind :
       {StrategyKind::kLamps, StrategyKind::kLampsPs, StrategyKind::kSnsPs}) {
    Problem prob = make_problem(g, 2.0);
    prob.search_threads = 2;
    const StrategyResult dark = run_strategy(kind, prob);

    std::ostringstream sink;
    obs::set_log_sink(&sink);
    obs::set_structured_logging(true);
    obs::set_min_severity(obs::LogSeverity::kDebug);
    obs::set_tracing_enabled(true);
    // Threshold far below the record's latency: every record() promotes a
    // warn-level span dump through the structured sink mid-search.
    obs::FlightRecorder flights(16, 1e-9);
    obs::FlightRecord rec;
    rec.request_id = obs::next_request_id();
    rec.digest = 0x5eedULL;
    rec.arrival_ns = 1'000;
    rec.admit_ns = 2'000;
    rec.compute_start_ns = 3'000;
    rec.compute_end_ns = 1'500'000;
    rec.finish_ns = 1'600'000;
    rec.write_ns = 2'001'000;
    rec.response_bytes = 256;
    rec.outcome = obs::FlightOutcome::kComputed;

    flights.record(rec);
    obs::LogEvent(obs::LogSeverity::kInfo, "test.sweep_start")
        .str("strategy", to_string(kind));
    const StrategyResult lit = run_strategy(kind, prob);
    rec.request_id = obs::next_request_id();
    flights.record(rec);

    obs::set_tracing_enabled(false);
    obs::set_min_severity(obs::LogSeverity::kInfo);
    obs::set_structured_logging(false);
    obs::set_log_sink(nullptr);

    expect_identical_results(dark, lit);
    // The observability plane really was live, not silently disabled.
    EXPECT_EQ(flights.total_recorded(), 2U);
    EXPECT_NE(sink.str().find("serve.slow_request"), std::string::npos);
    EXPECT_NE(sink.str().find("test.sweep_start"), std::string::npos);
  }
  obs::clear_trace();
}

TEST(SweepDeterminismTest, HardwareConcurrencySettingMatchesSerial) {
  const auto group = stg::make_random_group(300, 1);
  const graph::TaskGraph g = graph::scale_weights(group[0], stg::kCoarseGrainCyclesPerUnit);
  Problem prob = make_problem(g, 2.0);
  prob.search_threads = 1;
  const StrategyResult serial = lamps_schedule_ps(prob);
  prob.search_threads = 0;  // hardware concurrency
  const StrategyResult parallel = lamps_schedule_ps(prob);
  expect_identical_results(serial, parallel);
}

}  // namespace
}  // namespace lamps::core
