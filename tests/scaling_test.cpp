// Technology-scaling and memory-boundedness model tests.
#include <gtest/gtest.h>

#include "energy/memory_model.hpp"
#include "graph/analysis.hpp"
#include "power/dvs_ladder.hpp"
#include "power/technology.hpp"
#include "sched/list_scheduler.hpp"
#include "stg/random_gen.hpp"

namespace lamps {
namespace {

// ------------------------------------------------- technology scaling --

TEST(TechnologyScaling, GenerationZeroIsThePaperNode) {
  const power::Technology base = power::technology_70nm();
  const power::Technology t = power::technology_scaled(0);
  EXPECT_DOUBLE_EQ(t.k3, base.k3);
  EXPECT_DOUBLE_EQ(t.ij, base.ij);
  EXPECT_DOUBLE_EQ(t.ceff, base.ceff);
}

TEST(TechnologyScaling, LeakageGrowsDynamicShrinks) {
  const power::Technology base = power::technology_70nm();
  const power::Technology t = power::technology_scaled(2);
  EXPECT_DOUBLE_EQ(t.k3, base.k3 * 25.0);
  EXPECT_DOUBLE_EQ(t.ij, base.ij * 25.0);
  EXPECT_NEAR(t.ceff, base.ceff * 0.49, 1e-15);
}

TEST(TechnologyScaling, StaticShareRisesWithGenerations) {
  double prev = 0.0;
  for (unsigned gen = 0; gen <= 3; ++gen) {
    const power::PowerModel model(power::technology_scaled(gen));
    const power::PowerBreakdown p = model.active_power(model.tech().vdd_nominal);
    const double share = (p.leakage + p.intrinsic) / p.total();
    EXPECT_GT(share, prev);
    prev = share;
  }
  EXPECT_GT(prev, 0.9);  // three generations out, leakage dominates
}

TEST(TechnologyScaling, CriticalSpeedRisesWithLeakage) {
  // More leakage makes slow execution costlier: the critical frequency
  // climbs (paper section 1 argument in model form).
  const power::PowerModel now{power::technology_scaled(0)};
  const power::PowerModel later{power::technology_scaled(2)};
  EXPECT_GT(later.critical_frequency() / later.max_frequency(),
            now.critical_frequency() / now.max_frequency());
}

TEST(TechnologyScaling, FrequencyLadderUnchanged) {
  // Delay model is fixed by design: same f_max, same levels.
  const power::PowerModel a{power::technology_scaled(0)};
  const power::PowerModel b{power::technology_scaled(3)};
  EXPECT_DOUBLE_EQ(a.max_frequency().value(), b.max_frequency().value());
}

TEST(TechnologyScaling, RejectsImplausibleFactors) {
  EXPECT_THROW((void)power::technology_scaled(1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)power::technology_scaled(1, 5.0, 1.5), std::invalid_argument);
  EXPECT_THROW((void)power::technology_scaled(1, 5.0, 0.0), std::invalid_argument);
}

// ------------------------------------------------------- memory model --

class MemoryModelFixture : public ::testing::Test {
 protected:
  power::PowerModel model;
  power::DvsLadder ladder{model};

  struct Setup {
    graph::TaskGraph graph;
    sched::Schedule schedule;
  };

  [[nodiscard]] static Setup make_setup(std::uint64_t seed) {
    stg::RandomGraphSpec spec;
    spec.num_tasks = 40;
    spec.method = stg::GenMethod::kLayrPred;
    spec.seed = seed;
    graph::TaskGraph g = stg::generate_random(spec);
    sched::Schedule s = sched::list_schedule_edf(g, 3, 10 * g.total_work());
    return Setup{std::move(g), std::move(s)};
  }
};

TEST_F(MemoryModelFixture, ZeroMemoryFractionMatchesConservativeModel) {
  const Setup su = make_setup(1);
  const std::vector<double> zero(su.graph.num_tasks(), 0.0);
  const auto r = energy::retime_memory_aware(su.schedule, su.graph,
                                             ladder.critical_level(),
                                             model.max_frequency(), zero);
  EXPECT_NEAR(r.makespan.value(), r.conservative_makespan.value(),
              r.conservative_makespan.value() * 1e-12);
  EXPECT_NEAR(r.margin, 0.0, 1e-12);
}

TEST_F(MemoryModelFixture, MemoryFractionCreatesMargin) {
  const Setup su = make_setup(2);
  const std::vector<double> mem(su.graph.num_tasks(), 0.3);
  const auto& lvl = ladder.critical_level();  // f < f_max: memory is "free" speedup
  const auto r = energy::retime_memory_aware(su.schedule, su.graph, lvl,
                                             model.max_frequency(), mem);
  EXPECT_LT(r.makespan.value(), r.conservative_makespan.value());
  EXPECT_GT(r.margin, 0.0);
  // At f = f_max there is no margin regardless of the fraction.
  const auto top = energy::retime_memory_aware(su.schedule, su.graph,
                                               ladder.max_level(),
                                               model.max_frequency(), mem);
  EXPECT_NEAR(top.margin, 0.0, 1e-12);
}

TEST_F(MemoryModelFixture, MarginGrowsWithMemoryFractionAndSlowerClock) {
  const Setup su = make_setup(3);
  const auto margin_for = [&](double m, const power::DvsLevel& lvl) {
    const std::vector<double> mem(su.graph.num_tasks(), m);
    return energy::retime_memory_aware(su.schedule, su.graph, lvl,
                                       model.max_frequency(), mem)
        .margin;
  };
  const auto& crit = ladder.critical_level();
  EXPECT_LT(margin_for(0.1, crit), margin_for(0.5, crit));
  EXPECT_LT(margin_for(0.3, ladder.level(crit.index + 2)), margin_for(0.3, ladder.level(0)));
}

TEST_F(MemoryModelFixture, FinishTimesRespectPrecedence) {
  const Setup su = make_setup(4);
  const std::vector<double> mem(su.graph.num_tasks(), 0.4);
  const auto r = energy::retime_memory_aware(su.schedule, su.graph,
                                             ladder.critical_level(),
                                             model.max_frequency(), mem);
  for (graph::TaskId v = 0; v < su.graph.num_tasks(); ++v)
    for (const graph::TaskId s : su.graph.successors(v))
      EXPECT_LE(r.finish[v].value(),
                r.finish[s].value() + 1e-15);  // succ finishes after its pred
}

TEST_F(MemoryModelFixture, Validation) {
  const Setup su = make_setup(5);
  const std::vector<double> wrong_size(3, 0.1);
  EXPECT_THROW((void)energy::retime_memory_aware(su.schedule, su.graph,
                                                 ladder.max_level(),
                                                 model.max_frequency(), wrong_size),
               std::invalid_argument);
  std::vector<double> bad(su.graph.num_tasks(), 0.1);
  bad[0] = 1.5;
  EXPECT_THROW((void)energy::retime_memory_aware(su.schedule, su.graph,
                                                 ladder.max_level(),
                                                 model.max_frequency(), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace lamps
