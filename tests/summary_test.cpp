// Descriptive-statistics utility tests.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/summary.hpp"

namespace lamps {
namespace {

TEST(Summary, BasicMoments) {
  const std::array<double, 5> xs{2.0, 4.0, 4.0, 4.0, 6.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt((4.0 + 0 + 0 + 0 + 4.0) / 4.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.median, 4.0);
}

TEST(Summary, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).n, 0u);
  const std::array<double, 1> one{7.5};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
}

TEST(Summary, QuantileInterpolates) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_NEAR(quantile(xs, 0.25), 1.75, 1e-12);
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(xs, 1.5), std::invalid_argument);
}

TEST(Summary, QuantileIsOrderInvariant) {
  const std::array<double, 5> shuffled{3.0, 1.0, 5.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(shuffled, 0.5), 3.0);
}

TEST(Summary, BootstrapCiBracketsMeanAndIsDeterministic) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(10.0 + (i % 7));
  const BootstrapCi a = bootstrap_mean_ci(xs);
  const BootstrapCi b = bootstrap_mean_ci(xs);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  const double mean = summarize(xs).mean;
  EXPECT_LE(a.lo, mean);
  EXPECT_GE(a.hi, mean);
  EXPECT_LT(a.hi - a.lo, 2.0);  // tight-ish for 50 low-variance samples
}

TEST(Summary, BootstrapValidation) {
  const std::array<double, 3> xs{1.0, 2.0, 3.0};
  EXPECT_THROW((void)bootstrap_mean_ci({}, 0.95), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci(xs, 1.5), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci(xs, 0.95, 3), std::invalid_argument);
}

TEST(Summary, WiderConfidenceWiderInterval) {
  std::vector<double> xs;
  for (int i = 0; i < 40; ++i) xs.push_back(static_cast<double>(i));
  const BootstrapCi c90 = bootstrap_mean_ci(xs, 0.90);
  const BootstrapCi c99 = bootstrap_mean_ci(xs, 0.99);
  EXPECT_LE(c99.lo, c90.lo);
  EXPECT_GE(c99.hi, c90.hi);
}

}  // namespace
}  // namespace lamps
