// Fault-tolerance tests for the experiment sweep: per-cell isolation,
// retry-with-backoff, watchdog timeouts, and crash-safe kill-and-resume
// through the journal.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/runner.hpp"
#include "exp/experiment.hpp"
#include "graph/transform.hpp"
#include "obs/metrics.hpp"
#include "stg/suite.hpp"
#include "util/errors.hpp"

namespace lamps {
namespace {

namespace fs = std::filesystem;

std::vector<core::SuiteEntry> tiny_suite(std::size_t graphs = 2) {
  std::vector<core::SuiteEntry> entries;
  for (auto& g : stg::make_random_group(20, graphs, /*seed=*/7))
    entries.push_back(core::SuiteEntry{"20", graph::scale_weights(g, 3'100'000)});
  return entries;
}

core::SweepConfig tiny_config() {
  core::SweepConfig cfg;
  cfg.deadline_factors = {2.0, 4.0};
  cfg.strategies = {core::StrategyKind::kSns, core::StrategyKind::kLamps};
  cfg.threads = 2;
  cfg.retry_backoff_seconds = 0.0;  // keep retry tests fast
  return cfg;
}

// ------------------------------------------------------- cell isolation --

TEST(FaultIsolation, OneFailingCellNeverDiscardsTheSweep) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const auto entries = tiny_suite();
  core::SweepConfig cfg = tiny_config();
  cfg.fault_injector = [&](const core::InstanceResult& cell, std::size_t) {
    if (cell.graph_name == entries[0].graph.name() &&
        cell.strategy == core::StrategyKind::kLamps && cell.deadline_factor == 2.0)
      throw InternalError(ErrorCode::kInternal, "injected fault");
  };

  const auto results = core::run_sweep(entries, model, ladder, cfg);
  ASSERT_EQ(results.size(), 2u * 2u * 2u);
  std::size_t failed = 0;
  for (const auto& r : results) {
    if (r.outcome == core::CellOutcome::kFailed) {
      ++failed;
      EXPECT_EQ(r.graph_name, entries[0].graph.name());
      EXPECT_EQ(r.strategy, core::StrategyKind::kLamps);
      EXPECT_EQ(r.error, ErrorCode::kInternal);
      EXPECT_EQ(r.error_message, "injected fault");
      // The payload is zeroed: a failed cell can never look like data.
      EXPECT_FALSE(r.feasible);
      EXPECT_EQ(r.energy.value(), 0.0);
      EXPECT_EQ(r.num_procs, 0u);
    } else {
      EXPECT_EQ(r.outcome, core::CellOutcome::kOk);
      EXPECT_EQ(r.error, ErrorCode::kNone);
    }
  }
  EXPECT_EQ(failed, 1u);
}

TEST(FaultIsolation, RetryableFailuresAreRetriedWithCountedAttempts) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const auto entries = tiny_suite(1);
  core::SweepConfig cfg = tiny_config();
  cfg.deadline_factors = {2.0};
  cfg.strategies = {core::StrategyKind::kSns};
  cfg.threads = 1;
  cfg.max_retries = 2;
  cfg.fault_injector = [](const core::InstanceResult&, std::size_t attempt) {
    if (attempt < 2)
      throw InternalError(ErrorCode::kIo, "transient", {}, {}, /*retryable=*/true);
  };

  const std::uint64_t retries_before = obs::counter("sweep.retries").value();
  const auto results = core::run_sweep(entries, model, ladder, cfg);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome, core::CellOutcome::kOk);
  EXPECT_EQ(results[0].retries, 2u);
  EXPECT_TRUE(results[0].feasible);
  EXPECT_EQ(obs::counter("sweep.retries").value(), retries_before + 2);
}

TEST(FaultIsolation, RetriesStopAtTheBudgetAndDeterministicFailuresNeverRetry) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const auto entries = tiny_suite(1);
  core::SweepConfig cfg = tiny_config();
  cfg.deadline_factors = {2.0};
  cfg.strategies = {core::StrategyKind::kSns, core::StrategyKind::kLamps};
  cfg.threads = 1;
  cfg.max_retries = 2;
  std::size_t deterministic_attempts = 0;
  cfg.fault_injector = [&](const core::InstanceResult& cell, std::size_t) {
    if (cell.strategy == core::StrategyKind::kSns)
      throw InternalError(ErrorCode::kIo, "always down", {}, {}, /*retryable=*/true);
    ++deterministic_attempts;
    throw ValidationError(ErrorCode::kScheduleInvalid, "broken");  // not retryable
  };

  const auto results = core::run_sweep(entries, model, ladder, cfg);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.outcome, core::CellOutcome::kFailed);
    if (r.strategy == core::StrategyKind::kSns)
      EXPECT_EQ(r.retries, 2u) << "retryable failure retries up to the budget";
    else
      EXPECT_EQ(r.retries, 0u) << "deterministic failure must not retry";
  }
  EXPECT_EQ(deterministic_attempts, 1u);
}

TEST(FaultIsolation, WatchdogRecordsTimeoutCells) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const auto entries = tiny_suite(1);
  core::SweepConfig cfg = tiny_config();
  cfg.cell_timeout_seconds = 1e-9;  // expires before any scheduling loop runs

  const std::uint64_t timeouts_before = obs::counter("watchdog.timeouts").value();
  const auto results = core::run_sweep(entries, model, ladder, cfg);
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) {
    EXPECT_EQ(r.outcome, core::CellOutcome::kTimeout);
    EXPECT_EQ(r.error, ErrorCode::kCellTimeout);
    EXPECT_FALSE(r.feasible);
  }
  EXPECT_GE(obs::counter("watchdog.timeouts").value(),
            timeouts_before + results.size());
}

TEST(FaultIsolation, SkipPredicateMarksCellsSkipped) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const auto entries = tiny_suite(1);
  core::SweepConfig cfg = tiny_config();
  cfg.skip_cell = [](const core::InstanceResult& r) {
    return r.strategy == core::StrategyKind::kLamps;
  };
  std::size_t executed = 0;
  cfg.on_cell_done = [&](const core::InstanceResult&) { ++executed; };

  const auto results = core::run_sweep(entries, model, ladder, cfg);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results)
    EXPECT_EQ(r.outcome, r.strategy == core::StrategyKind::kLamps
                             ? core::CellOutcome::kSkipped
                             : core::CellOutcome::kOk);
  EXPECT_EQ(executed, 2u) << "on_cell_done must not fire for skipped cells";
}

// ------------------------------------------------------ kill and resume --

/// Reads a CSV and blanks the wall-clock `seconds` column (15th of 16) —
/// the one legitimately non-deterministic column for *re-executed* rows.
std::vector<std::string> read_csv_normalized(const std::string& path) {
  std::vector<std::string> rows;
  std::ifstream is(path);
  std::string line;
  while (std::getline(is, line)) {
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string f;
    while (std::getline(ss, f, ',')) fields.push_back(f);
    // OK rows have an empty trailing error_message, which getline drops, so
    // the seconds column (index 14) is present at sizes 15 and 16.
    if (fields.size() >= 15) fields[14].clear();
    std::string joined;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) joined += ',';
      joined += fields[i];
    }
    rows.push_back(std::move(joined));
  }
  return rows;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream is(path);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(KillAndResume, TruncatedJournalReplaysCompletedCellsBitExactly) {
  const fs::path dir = fs::temp_directory_path() / "lamps_resume_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  exp::ExperimentSpec spec;
  spec.sizes = {20};
  spec.graphs_per_group = 2;
  spec.include_apps = false;
  spec.deadline_factors = {2.0, 4.0};
  spec.strategies = {core::StrategyKind::kSns, core::StrategyKind::kLamps};
  spec.threads = 2;
  spec.csv_prefix = (dir / "run").string();

  // Clean run: the ground truth.
  std::ostringstream report1;
  const exp::ExperimentOutput clean = exp::run_experiment(spec, report1);
  const std::string csv_path = spec.csv_prefix + "_coarse_instances.csv";
  const std::vector<std::string> clean_rows = read_csv_normalized(csv_path);
  ASSERT_EQ(clean.cells.ok, 8u);
  ASSERT_EQ(clean.cells.replayed, 0u);

  // Simulate a SIGKILL mid-sweep: keep only half the journal, with the last
  // kept line torn mid-record (as an interrupted fsync'd append would leave).
  const std::vector<std::string> journal = read_lines(clean.journal_path);
  ASSERT_EQ(journal.size(), 8u);
  {
    std::ofstream os(clean.journal_path, std::ios::trunc);
    for (std::size_t i = 0; i < 4; ++i) os << journal[i] << '\n';
    os << journal[4].substr(0, journal[4].size() / 2);  // torn tail
  }

  // Resume: 4 journaled cells replay, the torn one and the missing 3 re-run.
  exp::ExperimentSpec resume_spec = spec;
  resume_spec.resume = true;
  std::ostringstream report2;
  const exp::ExperimentOutput resumed = exp::run_experiment(resume_spec, report2);
  EXPECT_EQ(resumed.cells.replayed, 4u);
  EXPECT_EQ(resumed.cells.ok, 8u);
  EXPECT_EQ(resumed.journal_lines_dropped, 1u);
  EXPECT_NE(report2.str().find("replayed 4 cells"), std::string::npos);

  // The resumed CSV matches the clean run everywhere but the wall-clock
  // seconds of re-executed rows.
  EXPECT_EQ(read_csv_normalized(csv_path), clean_rows);

  // Replayed rows are bit-exact, seconds included: a second resume (full
  // journal now) must reproduce the file byte for byte.
  const std::vector<std::string> after_resume = read_lines(csv_path);
  std::ostringstream report3;
  const exp::ExperimentOutput replay_all = exp::run_experiment(resume_spec, report3);
  EXPECT_EQ(replay_all.cells.replayed, 8u);
  EXPECT_EQ(read_lines(csv_path), after_resume);

  fs::remove_all(dir);
}

TEST(KillAndResume, CorruptStgFileBecomesFailCells) {
  const fs::path dir = fs::temp_directory_path() / "lamps_badstg_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string bad = (dir / "bad.stg").string();
  std::ofstream(bad) << "1\n0 0 0\n1 -5 1 0\n2 0 1 1\n";  // negative weight

  exp::ExperimentSpec spec;
  spec.sizes = {20};
  spec.graphs_per_group = 1;
  spec.include_apps = false;
  spec.stg_files = {bad};
  spec.deadline_factors = {2.0};
  spec.strategies = {core::StrategyKind::kSns, core::StrategyKind::kLamps};
  spec.threads = 1;

  std::ostringstream report;
  const exp::ExperimentOutput out = exp::run_experiment(spec, report);
  // 1 generated graph x 2 strategies ok, plus 2 synthesized FAIL cells.
  EXPECT_EQ(out.cells.ok, 2u);
  EXPECT_EQ(out.cells.failed, 2u);
  std::size_t fail_rows = 0;
  for (const auto& r : out.instances)
    if (r.outcome == core::CellOutcome::kFailed) {
      ++fail_rows;
      EXPECT_EQ(r.graph_name, bad);
      EXPECT_EQ(r.error, ErrorCode::kStgParse);
      EXPECT_FALSE(r.feasible);
    }
  EXPECT_EQ(fail_rows, 2u);
  EXPECT_NE(report.str().find("FAIL cell"), std::string::npos);
  fs::remove_all(dir);
}

TEST(KillAndResume, ResumeWithoutPrefixIsAConfigError) {
  exp::ExperimentSpec spec;
  spec.resume = true;
  spec.csv_prefix.clear();
  std::ostringstream report;
  try {
    (void)exp::run_experiment(spec, report);
    FAIL() << "resume without csv_prefix accepted";
  } catch (const InputError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
  }
}

}  // namespace
}  // namespace lamps
