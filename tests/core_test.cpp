// Strategy tests: S&S / LAMPS / +PS / LIMIT behaviour on controlled
// instances, phase-1 binary search, processor sweeps, and the MPEG-1
// benchmark's qualitative Table 3 relations.
#include <gtest/gtest.h>

#include "apps/mpeg.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "sched/schedule.hpp"

namespace lamps::core {
namespace {

using graph::TaskGraph;
using graph::TaskGraphBuilder;
using graph::TaskId;

class StrategyFixture : public ::testing::Test {
 protected:
  power::PowerModel model;
  power::DvsLadder ladder{model};

  [[nodiscard]] Problem make_problem(const TaskGraph& g, double deadline_factor) const {
    Problem p;
    p.graph = &g;
    p.model = &model;
    p.ladder = &ladder;
    const Cycles cpl = graph::critical_path_length(g);
    p.deadline = Seconds{static_cast<double>(cpl) / model.max_frequency().value() *
                         deadline_factor};
    return p;
  }

  /// Fig 4 graph scaled to 1 weight unit = 3.1e6 cycles (coarse grain).
  [[nodiscard]] static TaskGraph fig4_coarse() {
    TaskGraphBuilder b("fig4");
    const TaskId t1 = b.add_task(2, "T1");
    const TaskId t2 = b.add_task(6, "T2");
    const TaskId t3 = b.add_task(4, "T3");
    b.add_task(4, "T4");
    const TaskId t5 = b.add_task(2, "T5");
    b.add_edge(t1, t2);
    b.add_edge(t1, t3);
    b.add_edge(t2, t5);
    b.add_edge(t3, t5);
    return graph::scale_weights(b.build(), 3'100'000);
  }

  /// n independent tasks of `units` weight units each, coarse grain.
  [[nodiscard]] static TaskGraph independent(std::size_t n, Cycles units) {
    TaskGraphBuilder b("indep");
    for (std::size_t i = 0; i < n; ++i) (void)b.add_task(units);
    return graph::scale_weights(b.build(), 3'100'000);
  }
};

// ------------------------------------------------------------------- S&S --

TEST_F(StrategyFixture, SnsProducesValidFeasibleStretchedSchedule) {
  const TaskGraph g = fig4_coarse();
  const Problem prob = make_problem(g, 2.0);
  const StrategyResult r = schedule_and_stretch(prob);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_EQ(sched::validate_schedule(*r.schedule, g), "");
  EXPECT_LE(r.completion.value(), prob.deadline.value() * (1.0 + 1e-9));
  // Fig 4: makespan stops improving at 2 processors under LS-EDF.
  EXPECT_EQ(r.num_procs, 2u);
  EXPECT_GT(r.energy().value(), 0.0);
}

TEST_F(StrategyFixture, SnsPicksLowestFeasibleLevel) {
  const TaskGraph g = fig4_coarse();
  const Problem prob = make_problem(g, 2.0);
  const StrategyResult r = schedule_and_stretch(prob);
  ASSERT_TRUE(r.feasible);
  const power::DvsLevel& lvl = ladder.level(r.level_index);
  // The chosen level fits...
  EXPECT_LE(static_cast<double>(r.schedule->makespan()) / lvl.f.value(),
            prob.deadline.value() * (1.0 + 1e-9));
  // ...and the next-lower one does not.
  if (r.level_index > 0) {
    const power::DvsLevel& below = ladder.level(r.level_index - 1);
    EXPECT_GT(static_cast<double>(r.schedule->makespan()) / below.f.value(),
              prob.deadline.value());
  }
}

TEST_F(StrategyFixture, SnsInfeasibleWhenDeadlineBelowCriticalPath) {
  const TaskGraph g = fig4_coarse();
  const Problem prob = make_problem(g, 0.5);
  const StrategyResult r = schedule_and_stretch(prob);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.schedule.has_value());
}

TEST_F(StrategyFixture, SnsUsesMoreProcessorsForWiderGraphs) {
  const TaskGraph g = independent(8, 4);
  const Problem prob = make_problem(g, 2.0);
  const StrategyResult r = schedule_and_stretch(prob);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.num_procs, 8u);  // every extra processor reduces the makespan
}

// ----------------------------------------------------------------- LAMPS --

TEST_F(StrategyFixture, LampsNeverWorseThanSns) {
  for (const double factor : {1.5, 2.0, 4.0, 8.0}) {
    const TaskGraph g = fig4_coarse();
    const Problem prob = make_problem(g, factor);
    const StrategyResult sns = schedule_and_stretch(prob);
    const StrategyResult lam = lamps_schedule(prob);
    ASSERT_TRUE(sns.feasible);
    ASSERT_TRUE(lam.feasible);
    EXPECT_LE(lam.energy().value(), sns.energy().value() * (1.0 + 1e-12))
        << "factor " << factor;
    EXPECT_LE(lam.num_procs, sns.num_procs);
  }
}

TEST_F(StrategyFixture, LampsEmploysFewerProcessorsOnLooseDeadline) {
  // 8 independent equal tasks, deadline 8x the task length: one processor
  // running all tasks back-to-back meets the deadline at a low frequency
  // and avoids 7 idle processors' leakage.
  const TaskGraph g = independent(8, 4);
  const Problem prob = make_problem(g, 8.0);
  const StrategyResult r = lamps_schedule(prob);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.num_procs, 4u);
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_EQ(sched::validate_schedule(*r.schedule, g), "");
}

TEST_F(StrategyFixture, LampsBinarySearchFindsExactMinimumForIndependentTasks) {
  // n independent unit tasks with deadline k units: N_min = ceil(n / k).
  const TaskGraph g = independent(12, 1);
  // Deadline = 3 task lengths: at f_max, at least 4 processors are needed,
  // and LAMPS phase 2 may then choose more only if it reduces energy.
  const Problem prob = make_problem(g, 3.0);
  const StrategyResult r = lamps_schedule(prob);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.num_procs, 4u);
  // Verify optimality of phase 1 against brute force: 3 procs infeasible.
  const auto sweep = processor_sweep(prob, 12, false);
  EXPECT_FALSE(sweep[2].feasible);  // 3 processors
  EXPECT_TRUE(sweep[3].feasible);   // 4 processors
}

TEST_F(StrategyFixture, LampsInfeasibleReportsCleanly) {
  const TaskGraph g = fig4_coarse();
  const Problem prob = make_problem(g, 0.9);
  const StrategyResult r = lamps_schedule(prob);
  EXPECT_FALSE(r.feasible);
}

TEST_F(StrategyFixture, ProcessorSweepEnergyMatchesLampsChoice) {
  const TaskGraph g = fig4_coarse();
  const Problem prob = make_problem(g, 4.0);
  const StrategyResult r = lamps_schedule(prob);
  ASSERT_TRUE(r.feasible);
  const auto sweep = processor_sweep(prob, 5, false);
  // LAMPS's result must equal the best feasible sweep point over the range
  // it scanned (it scans from N_min while the makespan decreases).
  double best = 1e300;
  for (const SweepPoint& pt : sweep)
    if (pt.feasible) best = std::min(best, pt.energy.value());
  EXPECT_NEAR(r.energy().value(), best, best * 1e-12);
}

// ------------------------------------------------------------------- +PS --

TEST_F(StrategyFixture, PsVariantsNeverWorseThanBase) {
  for (const double factor : {1.5, 2.0, 4.0, 8.0}) {
    const TaskGraph g = fig4_coarse();
    const Problem prob = make_problem(g, factor);
    const StrategyResult sns = schedule_and_stretch(prob);
    const StrategyResult sns_ps = schedule_and_stretch_ps(prob);
    const StrategyResult lam = lamps_schedule(prob);
    const StrategyResult lam_ps = lamps_schedule_ps(prob);
    ASSERT_TRUE(sns_ps.feasible);
    ASSERT_TRUE(lam_ps.feasible);
    EXPECT_LE(sns_ps.energy().value(), sns.energy().value() * (1.0 + 1e-12));
    EXPECT_LE(lam_ps.energy().value(), lam.energy().value() * (1.0 + 1e-12));
  }
}

TEST_F(StrategyFixture, PsEngagesOnVeryLooseDeadline) {
  // Coarse tasks with an 8x deadline leave multi-millisecond tails: PS must
  // shut down at least the trailing gaps.
  const TaskGraph g = independent(4, 100);
  const Problem prob = make_problem(g, 8.0);
  const StrategyResult r = schedule_and_stretch_ps(prob);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.breakdown.shutdowns, 0u);
  EXPECT_GT(r.breakdown.wakeup.value(), 0.0);
}

TEST_F(StrategyFixture, PsDoesNotEngageOnFineGrainTightDeadline) {
  // Fine-grain tasks (31k cycles/unit): all gaps are far below breakeven.
  TaskGraphBuilder b;
  for (int i = 0; i < 4; ++i) (void)b.add_task(100);
  const TaskGraph g = graph::scale_weights(b.build(), 31'000);
  const Problem prob = make_problem(g, 1.5);
  const StrategyResult r = schedule_and_stretch_ps(prob);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.breakdown.shutdowns, 0u);
}

// ---------------------------------------------------------------- LIMITs --

TEST_F(StrategyFixture, LimitSfBelowEveryHeuristic) {
  const TaskGraph g = fig4_coarse();
  for (const double factor : {1.5, 2.0, 4.0, 8.0}) {
    const Problem prob = make_problem(g, factor);
    const StrategyResult lim = limit_sf(prob);
    ASSERT_TRUE(lim.feasible);
    for (const StrategyKind k : kHeuristics) {
      const StrategyResult r = run_strategy(k, prob);
      ASSERT_TRUE(r.feasible);
      EXPECT_LE(lim.energy().value(), r.energy().value() * (1.0 + 1e-12))
          << to_string(k) << " at factor " << factor;
    }
  }
}

TEST_F(StrategyFixture, LimitMfBelowLimitSf) {
  const TaskGraph g = fig4_coarse();
  for (const double factor : {1.5, 2.0, 4.0, 8.0}) {
    const Problem prob = make_problem(g, factor);
    EXPECT_LE(limit_mf(prob).energy().value(),
              limit_sf(prob).energy().value() * (1.0 + 1e-12));
  }
}

TEST_F(StrategyFixture, LimitsCoincideOnLooseDeadlines) {
  // Paper: "For loose deadlines (4x or 8x the CPL), LIMIT-MF consumes the
  // same amount of energy as LIMIT-SF" — both run at the discrete critical
  // level.
  const TaskGraph g = fig4_coarse();
  const Problem prob = make_problem(g, 8.0);
  EXPECT_NEAR(limit_sf(prob).energy().value(), limit_mf(prob).energy().value(), 1e-15);
}

TEST_F(StrategyFixture, LimitSfUsesFasterLevelWhenDeadlineBinds) {
  const TaskGraph g = fig4_coarse();
  const Problem tight = make_problem(g, 1.05);
  const Problem loose = make_problem(g, 8.0);
  const StrategyResult rt = limit_sf(tight);
  const StrategyResult rl = limit_sf(loose);
  ASSERT_TRUE(rt.feasible);
  ASSERT_TRUE(rl.feasible);
  EXPECT_GT(rt.level_index, rl.level_index);
  EXPECT_EQ(rl.level_index, ladder.critical_level().index);
  EXPECT_GT(rt.energy().value(), rl.energy().value());
}

TEST_F(StrategyFixture, LimitSfInfeasibleBelowCriticalPath) {
  const TaskGraph g = fig4_coarse();
  const Problem prob = make_problem(g, 0.9);
  EXPECT_FALSE(limit_sf(prob).feasible);
  EXPECT_TRUE(limit_mf(prob).feasible);  // MF ignores the deadline
}

TEST_F(StrategyFixture, ContinuousCriticalOptionLowersMfBound) {
  const TaskGraph g = fig4_coarse();
  const Problem prob = make_problem(g, 8.0);
  LimitOptions cont;
  cont.continuous_critical = true;
  EXPECT_LT(limit_mf(prob, cont).energy().value(),
            limit_mf(prob).energy().value() * (1.0 + 1e-15));
}

// ----------------------------------------------------------------- MPEG-1 --

TEST_F(StrategyFixture, MpegTable3QualitativeRelations) {
  const TaskGraph g = apps::mpeg1_gop_graph();
  Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = Seconds{0.5};

  const StrategyResult sns = schedule_and_stretch(prob);
  const StrategyResult lam = lamps_schedule(prob);
  const StrategyResult sns_ps = schedule_and_stretch_ps(prob);
  const StrategyResult lam_ps = lamps_schedule_ps(prob);
  const StrategyResult lsf = limit_sf(prob);
  const StrategyResult lmf = limit_mf(prob);
  ASSERT_TRUE(sns.feasible && lam.feasible && sns_ps.feasible && lam_ps.feasible);
  ASSERT_TRUE(lsf.feasible);

  // Table 3 orderings: LAMPS saves >= 20% over S&S; the PS variants land
  // within a few percent of LIMIT-SF; the limits coincide.
  EXPECT_LT(lam.energy().value(), sns.energy().value() * 0.8);
  EXPECT_LT(sns_ps.energy().value(), sns.energy().value() * 0.7);
  EXPECT_LT(lam_ps.energy().value(), sns.energy().value() * 0.7);
  EXPECT_LE(lsf.energy().value(), lam_ps.energy().value() * (1.0 + 1e-12));
  EXPECT_LT(lam_ps.energy().value(), lsf.energy().value() * 1.05);
  EXPECT_NEAR(lsf.energy().value(), lmf.energy().value(), lsf.energy().value() * 1e-12);

  // Processor counts: LAMPS uses strictly fewer than S&S (paper: 3 vs 7).
  EXPECT_LT(lam.num_procs, sns.num_procs);
  EXPECT_GE(lam.num_procs, 2u);
  EXPECT_LE(lam.num_procs, 4u);
}

// ------------------------------------------------------------- dispatcher --

TEST_F(StrategyFixture, RunStrategyDispatchesAllKinds) {
  const TaskGraph g = fig4_coarse();
  const Problem prob = make_problem(g, 2.0);
  for (const StrategyKind k : kAllStrategies) {
    const StrategyResult r = run_strategy(k, prob);
    EXPECT_TRUE(r.feasible) << to_string(k);
    EXPECT_GT(r.energy().value(), 0.0) << to_string(k);
  }
}

TEST_F(StrategyFixture, StrategyNames) {
  EXPECT_EQ(to_string(StrategyKind::kSns), "S&S");
  EXPECT_EQ(to_string(StrategyKind::kLamps), "LAMPS");
  EXPECT_EQ(to_string(StrategyKind::kSnsPs), "S&S+PS");
  EXPECT_EQ(to_string(StrategyKind::kLampsPs), "LAMPS+PS");
  EXPECT_EQ(to_string(StrategyKind::kLimitSf), "LIMIT-SF");
  EXPECT_EQ(to_string(StrategyKind::kLimitMf), "LIMIT-MF");
}

TEST_F(StrategyFixture, EmptyGraphHandledGracefully) {
  TaskGraphBuilder b;
  const TaskGraph g = b.build();
  Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = Seconds{1.0};
  EXPECT_FALSE(lamps_schedule(prob).feasible);
  EXPECT_TRUE(limit_sf(prob).feasible);
  EXPECT_DOUBLE_EQ(limit_mf(prob).energy().value(), 0.0);
}

}  // namespace
}  // namespace lamps::core
