// Property-based invariant checks across randomly generated task graphs.
//
// For every sampled (graph, granularity, deadline factor) instance these
// verify the invariants the paper's argumentation rests on:
//   * every heuristic's schedule is structurally valid and meets the
//     deadline at the chosen operating point,
//   * LIMIT-MF <= LIMIT-SF <= every heuristic (the bounds are bounds),
//   * +PS never loses to its base heuristic, LAMPS never loses to S&S,
//   * LAMPS employs no more processors than S&S,
//   * strategies are deterministic.
#include <gtest/gtest.h>

#include <tuple>

#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "sched/schedule.hpp"
#include "stg/random_gen.hpp"
#include "stg/suite.hpp"

namespace lamps::core {
namespace {

using graph::TaskGraph;

struct PropertyCase {
  std::size_t num_tasks;
  std::size_t variant;  // indexes the suite's parameter combinations
  Cycles cycles_per_unit;
  double deadline_factor;
};

class StrategyProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  static const power::PowerModel& model() {
    static const power::PowerModel m;
    return m;
  }
  static const power::DvsLadder& ladder() {
    static const power::DvsLadder l{model()};
    return l;
  }

  static TaskGraph make_graph(const PropertyCase& pc) {
    const auto specs = stg::random_group_specs(pc.num_tasks, pc.variant + 1);
    return graph::scale_weights(stg::generate_random(specs[pc.variant]),
                                pc.cycles_per_unit);
  }

  static Problem make_problem(const TaskGraph& g, double factor) {
    Problem p;
    p.graph = &g;
    p.model = &model();
    p.ladder = &ladder();
    const Cycles cpl = graph::critical_path_length(g);
    p.deadline =
        Seconds{static_cast<double>(cpl) / model().max_frequency().value() * factor};
    return p;
  }
};

TEST_P(StrategyProperties, SchedulesAreValidAndMeetDeadline) {
  const PropertyCase pc = GetParam();
  const TaskGraph g = make_graph(pc);
  const Problem prob = make_problem(g, pc.deadline_factor);
  for (const StrategyKind k : kHeuristics) {
    const StrategyResult r = run_strategy(k, prob);
    ASSERT_TRUE(r.feasible) << to_string(k);
    ASSERT_TRUE(r.schedule.has_value()) << to_string(k);
    EXPECT_EQ(sched::validate_schedule(*r.schedule, g), "") << to_string(k);
    EXPECT_LE(r.completion.value(), prob.deadline.value() * (1.0 + 1e-9)) << to_string(k);
    EXPECT_GT(r.num_procs, 0u) << to_string(k);
    // The chosen level really is on the ladder and fits the deadline.
    const power::DvsLevel& lvl = ladder().level(r.level_index);
    EXPECT_LE(static_cast<double>(r.schedule->makespan()) / lvl.f.value(),
              prob.deadline.value() * (1.0 + 1e-9))
        << to_string(k);
  }
}

TEST_P(StrategyProperties, EnergyOrderings) {
  const PropertyCase pc = GetParam();
  const TaskGraph g = make_graph(pc);
  const Problem prob = make_problem(g, pc.deadline_factor);

  const StrategyResult sns = run_strategy(StrategyKind::kSns, prob);
  const StrategyResult lam = run_strategy(StrategyKind::kLamps, prob);
  const StrategyResult sns_ps = run_strategy(StrategyKind::kSnsPs, prob);
  const StrategyResult lam_ps = run_strategy(StrategyKind::kLampsPs, prob);
  const StrategyResult lsf = run_strategy(StrategyKind::kLimitSf, prob);
  const StrategyResult lmf = run_strategy(StrategyKind::kLimitMf, prob);
  ASSERT_TRUE(sns.feasible && lam.feasible && sns_ps.feasible && lam_ps.feasible &&
              lsf.feasible);

  const double eps = 1.0 + 1e-9;
  EXPECT_LE(lmf.energy().value(), lsf.energy().value() * eps);
  for (const StrategyResult* r : {&sns, &lam, &sns_ps, &lam_ps})
    EXPECT_LE(lsf.energy().value(), r->energy().value() * eps);
  EXPECT_LE(lam.energy().value(), sns.energy().value() * eps);
  EXPECT_LE(sns_ps.energy().value(), sns.energy().value() * eps);
  EXPECT_LE(lam_ps.energy().value(), lam.energy().value() * eps);
  EXPECT_LE(lam.num_procs, sns.num_procs);
}

TEST_P(StrategyProperties, Determinism) {
  const PropertyCase pc = GetParam();
  const TaskGraph g = make_graph(pc);
  const Problem prob = make_problem(g, pc.deadline_factor);
  for (const StrategyKind k : {StrategyKind::kSns, StrategyKind::kLampsPs}) {
    const StrategyResult a = run_strategy(k, prob);
    const StrategyResult b = run_strategy(k, prob);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.num_procs, b.num_procs);
    EXPECT_EQ(a.level_index, b.level_index);
    EXPECT_DOUBLE_EQ(a.energy().value(), b.energy().value());
  }
}

TEST_P(StrategyProperties, BreakdownComponentsConsistent) {
  const PropertyCase pc = GetParam();
  const TaskGraph g = make_graph(pc);
  const Problem prob = make_problem(g, pc.deadline_factor);
  const StrategyResult r = run_strategy(StrategyKind::kLampsPs, prob);
  ASSERT_TRUE(r.feasible);
  const auto& e = r.breakdown;
  EXPECT_GE(e.dynamic.value(), 0.0);
  EXPECT_GE(e.leakage.value(), 0.0);
  EXPECT_GE(e.intrinsic.value(), 0.0);
  EXPECT_GE(e.sleep.value(), 0.0);
  EXPECT_GE(e.wakeup.value(), 0.0);
  EXPECT_NEAR(e.total().value(),
              e.dynamic.value() + e.leakage.value() + e.intrinsic.value() +
                  e.sleep.value() + e.wakeup.value(),
              e.total().value() * 1e-12);
  // Dynamic energy is at least total work at the chosen level's switching
  // cost (every cycle must be executed).
  const power::DvsLevel& lvl = ladder().level(r.level_index);
  const Seconds busy_total = cycles_to_time(g.total_work(), lvl.f);
  EXPECT_NEAR(e.dynamic.value(), (lvl.active.dynamic * busy_total).value(),
              e.dynamic.value() * 1e-9);
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  for (const std::size_t n : {30UL, 60UL, 120UL})
    for (std::size_t variant = 0; variant < 6; ++variant)
      for (const Cycles grain : {stg::kCoarseGrainCyclesPerUnit, stg::kFineGrainCyclesPerUnit})
        for (const double factor : {1.5, 4.0})
          cases.push_back(PropertyCase{n, variant, grain, factor});
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& pc = info.param;
  return "n" + std::to_string(pc.num_tasks) + "_v" + std::to_string(pc.variant) +
         (pc.cycles_per_unit == stg::kCoarseGrainCyclesPerUnit ? "_coarse" : "_fine") +
         "_d" + std::to_string(static_cast<int>(pc.deadline_factor * 10));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, StrategyProperties,
                         ::testing::ValuesIn(property_cases()), case_name);

}  // namespace
}  // namespace lamps::core
