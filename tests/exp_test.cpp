// Experiment-pipeline tests: INI parsing, spec construction, end-to-end
// run with CSV output.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/experiment.hpp"
#include "exp/ini.hpp"

namespace lamps::exp {
namespace {

// -------------------------------------------------------------------- ini --

TEST(Ini, ParsesSectionsKeysAndComments) {
  const Ini ini = Ini::parse_string(
      "; file comment\n"
      "[alpha]\n"
      "x = 10     ; trailing\n"
      "name = hello world\n"
      "\n"
      "[beta]\n"
      "# another comment style\n"
      "flag = true\n");
  EXPECT_TRUE(ini.has_section("alpha"));
  EXPECT_TRUE(ini.has_section("beta"));
  EXPECT_FALSE(ini.has_section("gamma"));
  EXPECT_EQ(ini.get_string("alpha", "name", ""), "hello world");
  EXPECT_EQ(ini.get_size("alpha", "x", 0), 10u);
  EXPECT_TRUE(ini.get_bool("beta", "flag", false));
}

TEST(Ini, FallbacksAndDuplicateKeys) {
  // Duplicate keys are rejected (not last-write-wins) so a typo can never
  // silently shadow an earlier setting; the error names both lines.
  try {
    (void)Ini::parse_string("[s]\nk = 1\nk = 2\n", "dup.ini");
    FAIL() << "duplicate key accepted";
  } catch (const InputError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIniParse);
    EXPECT_EQ(e.context(), "dup.ini:3");
    EXPECT_NE(e.message().find("first defined on line 2"), std::string::npos) << e.what();
  }
  // The same key in different sections is fine.
  const Ini ini = Ini::parse_string("[s]\nk = 1\n[t]\nk = 2\n");
  EXPECT_EQ(ini.get_size("s", "k", 0), 1u);
  EXPECT_EQ(ini.get_size("t", "k", 0), 2u);
  EXPECT_EQ(ini.get_size("s", "missing", 7), 7u);    // fallback
  EXPECT_EQ(ini.get_double("nope", "k", 1.5), 1.5);  // missing section
}

TEST(Ini, ErrorsCarryTheSourceName) {
  try {
    (void)Ini::parse_string("[s]\nno equals\n", "broken.ini");
    FAIL() << "malformed line accepted";
  } catch (const InputError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIniParse);
    EXPECT_EQ(e.context(), "broken.ini:2");
  }
  // Value errors report the source too (no line: values are looked up later).
  const Ini ini = Ini::parse_string("[s]\nx = abc\n", "vals.ini");
  try {
    (void)ini.get_double("s", "x", 0.0);
    FAIL() << "bad value accepted";
  } catch (const InputError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIniValue);
    EXPECT_EQ(e.context(), "vals.ini");
  }
  EXPECT_THROW((void)Ini::parse_file("/nonexistent/lamps.ini"), InputError);
}

TEST(Ini, Lists) {
  const Ini ini = Ini::parse_string("[s]\nd = 1.5, 2, 4\nn = 10, 20\nw = a, b , c\n");
  EXPECT_EQ(ini.get_double_list("s", "d", {}), (std::vector<double>{1.5, 2.0, 4.0}));
  EXPECT_EQ(ini.get_size_list("s", "n", {}), (std::vector<std::size_t>{10, 20}));
  EXPECT_EQ(ini.get_string_list("s", "w", {}), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ini.get_double_list("s", "missing", {9.0}), (std::vector<double>{9.0}));
}

TEST(Ini, BooleanSpellings) {
  const Ini ini = Ini::parse_string("[s]\na=yes\nb=OFF\nc=1\nd=false\n");
  EXPECT_TRUE(ini.get_bool("s", "a", false));
  EXPECT_FALSE(ini.get_bool("s", "b", true));
  EXPECT_TRUE(ini.get_bool("s", "c", false));
  EXPECT_FALSE(ini.get_bool("s", "d", true));
}

TEST(Ini, Errors) {
  EXPECT_THROW((void)Ini::parse_string("key = outside\n"), std::runtime_error);
  EXPECT_THROW((void)Ini::parse_string("[unterminated\n"), std::runtime_error);
  EXPECT_THROW((void)Ini::parse_string("[]\n"), std::runtime_error);
  EXPECT_THROW((void)Ini::parse_string("[s]\nno equals\n"), std::runtime_error);
  EXPECT_THROW((void)Ini::parse_string("[s]\n= value\n"), std::runtime_error);
  const Ini ini = Ini::parse_string("[s]\nx = abc\nb = maybe\n");
  EXPECT_THROW((void)ini.get_double("s", "x", 0.0), std::runtime_error);
  EXPECT_THROW((void)ini.get_size("s", "x", 0), std::runtime_error);
  EXPECT_THROW((void)ini.get_bool("s", "b", false), std::runtime_error);
}

// ------------------------------------------------------------------- spec --

TEST(Spec, DefaultsWhenEmpty) {
  const ExperimentSpec spec = ExperimentSpec::from_ini(Ini::parse_string(""));
  EXPECT_EQ(spec.sizes, (std::vector<std::size_t>{50, 100, 500}));
  EXPECT_EQ(spec.graphs_per_group, 12u);
  EXPECT_TRUE(spec.include_apps);
  EXPECT_EQ(spec.strategies.size(), 6u);
  EXPECT_EQ(spec.granularities, (std::vector<Cycles>{3'100'000}));
}

TEST(Spec, ParsesFullConfig) {
  const ExperimentSpec spec = ExperimentSpec::from_ini(Ini::parse_string(
      "[suite]\nsizes = 30\ngraphs_per_group = 2\ninclude_apps = false\nseed = 9\n"
      "[experiment]\ndeadline_factors = 2\ngranularity = both\n"
      "strategies = S&S, LIMIT-MF\nthreads = 1\n"
      "[output]\ncsv_prefix = /tmp/x\n"));
  EXPECT_EQ(spec.sizes, (std::vector<std::size_t>{30}));
  EXPECT_EQ(spec.graphs_per_group, 2u);
  EXPECT_FALSE(spec.include_apps);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.granularities.size(), 2u);
  ASSERT_EQ(spec.strategies.size(), 2u);
  EXPECT_EQ(spec.strategies[0], core::StrategyKind::kSns);
  EXPECT_EQ(spec.strategies[1], core::StrategyKind::kLimitMf);
  EXPECT_EQ(spec.csv_prefix, "/tmp/x");
}

TEST(Spec, RejectsUnknownNames) {
  EXPECT_THROW((void)ExperimentSpec::from_ini(
                   Ini::parse_string("[experiment]\ngranularity = medium\n")),
               std::runtime_error);
  EXPECT_THROW((void)ExperimentSpec::from_ini(
                   Ini::parse_string("[experiment]\nstrategies = BOGUS\n")),
               std::runtime_error);
  EXPECT_THROW((void)strategy_from_name("nope"), std::runtime_error);
  EXPECT_EQ(strategy_from_name("LAMPS+PS"), core::StrategyKind::kLampsPs);
}

TEST(Spec, ParsesFaultToleranceKeys) {
  const ExperimentSpec spec = ExperimentSpec::from_ini(Ini::parse_string(
      "[suite]\nstg_files = a.stg, b.stg\n"
      "[experiment]\ncell_timeout_seconds = 2.5\nvalidate = false\n"
      "max_retries = 4\nretry_backoff_seconds = 0.1\n"));
  EXPECT_EQ(spec.stg_files, (std::vector<std::string>{"a.stg", "b.stg"}));
  EXPECT_EQ(spec.cell_timeout_seconds, 2.5);
  EXPECT_FALSE(spec.validate);
  EXPECT_EQ(spec.max_retries, 4u);
  EXPECT_EQ(spec.retry_backoff_seconds, 0.1);
  EXPECT_THROW((void)ExperimentSpec::from_ini(Ini::parse_string(
                   "[experiment]\ncell_timeout_seconds = -1\n")),
               InputError);
}

// ------------------------------------------------------------ end to end --

TEST(Experiment, RunsAndWritesCsv) {
  ExperimentSpec spec;
  spec.sizes = {20};
  spec.graphs_per_group = 2;
  spec.include_apps = false;
  spec.deadline_factors = {2.0};
  spec.strategies = {core::StrategyKind::kSns, core::StrategyKind::kLampsPs};
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "lamps_exp_test").string();
  spec.csv_prefix = prefix;

  std::ostringstream report;
  const ExperimentOutput out = run_experiment(spec, report);
  EXPECT_EQ(out.instances.size(), 2u * 1u * 2u);
  EXPECT_FALSE(out.aggregated.empty());
  ASSERT_EQ(out.csv_files_written.size(), 3u);  // instances, groups, timing
  for (const std::string& path : out.csv_files_written) {
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << path;
    std::string header;
    ASSERT_TRUE(std::getline(is, header));
    EXPECT_NE(header.find("granularity"), std::string::npos);
    std::remove(path.c_str());
  }
  EXPECT_EQ(out.journal_path, prefix + ".journal.jsonl");
  EXPECT_TRUE(std::filesystem::exists(out.journal_path));
  EXPECT_EQ(out.cells.ok, out.instances.size());
  EXPECT_EQ(out.cells.bad(), 0u);
  std::remove(out.journal_path.c_str());
  EXPECT_NE(report.str().find("coarse grain"), std::string::npos);
  EXPECT_NE(report.str().find("LAMPS+PS"), std::string::npos);
  ASSERT_EQ(out.timings.size(), 1u);
  EXPECT_EQ(out.timings[0].tag, "coarse");
  EXPECT_GE(out.timings[0].sweep.wall_seconds, 0.0);
  EXPECT_GE(out.timings[0].sweep.cpu_process_seconds, 0.0);
  EXPECT_NE(report.str().find("timing:"), std::string::npos);
}

TEST(Experiment, ReportOnlyWhenNoPrefix) {
  ExperimentSpec spec;
  spec.sizes = {15};
  spec.graphs_per_group = 2;
  spec.include_apps = false;
  spec.deadline_factors = {4.0};
  spec.strategies = {core::StrategyKind::kSns, core::StrategyKind::kLimitSf};
  std::ostringstream report;
  const ExperimentOutput out = run_experiment(spec, report);
  EXPECT_TRUE(out.csv_files_written.empty());
  EXPECT_EQ(out.instances.size(), 4u);
}

}  // namespace
}  // namespace lamps::exp
