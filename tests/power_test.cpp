// Power-model tests: these pin the implementation to the paper's published
// numbers for the 70 nm technology (section 3.2-3.4, Table 1, Figs 2-3).
#include <gtest/gtest.h>

#include <cmath>

#include "power/dvs_ladder.hpp"
#include "power/power_model.hpp"
#include "power/sleep_model.hpp"

namespace lamps::power {
namespace {

using lamps::Hertz;
using lamps::Joules;
using lamps::Seconds;
using lamps::Volts;
using lamps::Watts;

class PowerModelFixture : public ::testing::Test {
 protected:
  PowerModel model;
  DvsLadder ladder{model};
  SleepModel sleep{model};
};

// --------------------------------------------------- paper-pinned values --

TEST_F(PowerModelFixture, MaxFrequencyIsAbout3Point1GHzAtOneVolt) {
  // Paper: "The maximum frequency of this processor is 3.1 GHz, which
  // requires a supply voltage of 1 V."
  EXPECT_NEAR(model.max_frequency().value() / 1e9, 3.1, 0.05);
}

TEST_F(PowerModelFixture, ContinuousCriticalFrequencyIsAbout038OfMax) {
  // Paper: "the optimal or critical frequency is 0.38 times the maximum".
  const double norm = model.critical_frequency() / model.max_frequency();
  EXPECT_NEAR(norm, 0.38, 0.01);
}

TEST_F(PowerModelFixture, DiscreteCriticalLevelIs07VoltAnd041OfMax) {
  // Paper: "Because of the discrete voltage levels, however, the critical
  // frequency is reached at a supply voltage of 0.7 V, corresponding to a
  // normalized frequency of 0.41."
  const DvsLevel& crit = ladder.critical_level();
  EXPECT_NEAR(crit.vdd.value(), 0.7, 1e-9);
  EXPECT_NEAR(crit.f_norm, 0.41, 0.005);
}

TEST_F(PowerModelFixture, BreakevenAtHalfSpeedIsAbout1Point7MillionCycles) {
  // Paper Fig 3: "When clocked at half the maximum frequency ... an idle
  // period of at least 1.7 million cycles is required."
  const DvsLevel* half = nullptr;
  for (const DvsLevel& lvl : ladder.levels())
    if (lvl.f_norm > 0.45 && lvl.f_norm < 0.55) half = &lvl;
  ASSERT_NE(half, nullptr);
  EXPECT_NEAR(sleep.breakeven_cycles(half->idle, half->f) / 1e6, 1.7, 0.15);
}

TEST_F(PowerModelFixture, TotalPowerAtMaxMatchesFig2a) {
  // Fig 2a shows ~2.2 W total at the nominal operating point.
  EXPECT_NEAR(ladder.max_level().active.total().value(), 2.2, 0.15);
}

// ------------------------------------------------------- model structure --

TEST_F(PowerModelFixture, FrequencyVoltageRoundTrip) {
  for (double v = 0.4; v <= 1.0; v += 0.05) {
    const Hertz f = model.frequency(Volts{v});
    EXPECT_NEAR(model.vdd_for_frequency(f).value(), v, 1e-12);
  }
}

TEST_F(PowerModelFixture, FrequencyIsStrictlyIncreasingInVdd) {
  double prev = 0.0;
  for (double v = 0.4; v <= 1.0; v += 0.01) {
    const double f = model.frequency(Volts{v}).value();
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST_F(PowerModelFixture, PowerComponentsArePositiveAndIncreasing) {
  double prev_total = 0.0;
  for (double v = 0.4; v <= 1.0; v += 0.05) {
    const PowerBreakdown p = model.active_power(Volts{v});
    EXPECT_GT(p.dynamic.value(), 0.0);
    EXPECT_GT(p.leakage.value(), 0.0);
    EXPECT_DOUBLE_EQ(p.intrinsic.value(), 0.1);
    EXPECT_GT(p.total().value(), prev_total);
    prev_total = p.total().value();
  }
}

TEST_F(PowerModelFixture, IdlePowerExcludesSwitching) {
  const Volts v{0.8};
  const PowerBreakdown p = model.active_power(v);
  EXPECT_DOUBLE_EQ(model.idle_power(v).value(), (p.leakage + p.intrinsic).value());
  EXPECT_LT(model.idle_power(v).value(), p.total().value());
}

TEST_F(PowerModelFixture, EnergyPerCycleIsUnimodalWithMinimumAtCriticalVdd) {
  const double v_crit = model.critical_vdd().value();
  // Decreasing above the critical point moving toward it, increasing below.
  EXPECT_LT(model.energy_per_cycle(Volts{v_crit}).value(),
            model.energy_per_cycle(Volts{v_crit + 0.1}).value());
  EXPECT_LT(model.energy_per_cycle(Volts{v_crit}).value(),
            model.energy_per_cycle(Volts{v_crit - 0.1}).value());
}

TEST_F(PowerModelFixture, ScalingBelowCriticalRaisesEnergyPerCycle) {
  // Paper section 3.3: "the energy consumption will actually start to
  // increase if the frequency is decreased below a certain point".
  const DvsLevel& crit = ladder.critical_level();
  ASSERT_GT(crit.index, 0u);
  EXPECT_GT(ladder.level(crit.index - 1).energy_per_cycle.value(),
            crit.energy_per_cycle.value());
}

TEST_F(PowerModelFixture, ThrowsOutsideValidRange) {
  EXPECT_THROW((void)model.frequency(Volts{0.1}), std::domain_error);
  EXPECT_THROW((void)model.vdd_for_frequency(Hertz{0.0}), std::domain_error);
  EXPECT_THROW((void)model.vdd_for_frequency(Hertz{-1.0}), std::domain_error);
}

TEST(PowerModelConfig, RejectsNominalVddBelowFloor) {
  Technology t;
  t.vdd_nominal = Volts{0.2};
  EXPECT_THROW(PowerModel{t}, std::invalid_argument);
}

// ----------------------------------------------------------- DVS ladder --

TEST_F(PowerModelFixture, LadderIsAscendingInFrequencyWith005VoltSteps) {
  ASSERT_GE(ladder.size(), 10u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_LT(ladder.level(i - 1).f.value(), ladder.level(i).f.value());
    EXPECT_NEAR(ladder.level(i).vdd.value() - ladder.level(i - 1).vdd.value(), 0.05, 1e-9);
  }
  EXPECT_NEAR(ladder.max_level().vdd.value(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(ladder.max_level().f_norm, 1.0);
}

TEST_F(PowerModelFixture, LevelIndicesAreSelfConsistent) {
  for (std::size_t i = 0; i < ladder.size(); ++i) EXPECT_EQ(ladder.level(i).index, i);
}

TEST_F(PowerModelFixture, LowestLevelAtLeastFindsTightestLevel) {
  const DvsLevel& crit = ladder.critical_level();
  const DvsLevel* found = ladder.lowest_level_at_least(crit.f);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->index, crit.index);

  // Slightly above a level's frequency selects the next level.
  const DvsLevel* next = ladder.lowest_level_at_least(Hertz{crit.f.value() * 1.0001});
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->index, crit.index + 1);

  // Faster than the maximum: unreachable.
  EXPECT_EQ(ladder.lowest_level_at_least(Hertz{ladder.max_level().f.value() * 1.01}), nullptr);

  // Any non-positive requirement is satisfied by the slowest level.
  EXPECT_EQ(ladder.lowest_level_at_least(Hertz{1.0})->index, 0u);
}

TEST(DvsLadderConfig, RespectsCustomVddMin) {
  Technology t;
  t.vdd_min = Volts{0.6};
  const PowerModel m(t);
  const DvsLadder lad(m);
  EXPECT_NEAR(lad.level(0).vdd.value(), 0.6, 1e-9);
  EXPECT_EQ(lad.size(), 9u);  // 0.60 .. 1.00 in 0.05 steps
}

// ---------------------------------------------------------- sleep model --

TEST_F(PowerModelFixture, BreakevenMatchesClosedForm) {
  const Watts p_idle{0.5};
  const Seconds t = sleep.breakeven_time(p_idle);
  EXPECT_NEAR(t.value(), 483e-6 / (0.5 - 50e-6), 1e-12);
}

TEST_F(PowerModelFixture, BreakevenInfiniteWhenIdleCheaperThanSleep) {
  EXPECT_TRUE(std::isinf(sleep.breakeven_time(Watts{20e-6}).value()));
}

TEST_F(PowerModelFixture, DecidePicksCheaperOption) {
  const Watts p_idle{0.4};
  const Seconds t_star = sleep.breakeven_time(p_idle);
  // Just below breakeven: stay on; just above: shut down.
  const auto stay = sleep.decide(t_star * 0.9, p_idle);
  EXPECT_FALSE(stay.shutdown);
  EXPECT_NEAR(stay.energy.value(), (p_idle * (t_star * 0.9)).value(), 1e-15);
  EXPECT_DOUBLE_EQ(stay.saved.value(), 0.0);

  const auto shut = sleep.decide(t_star * 2.0, p_idle);
  EXPECT_TRUE(shut.shutdown);
  EXPECT_GT(shut.saved.value(), 0.0);
  EXPECT_NEAR(shut.energy.value(),
              483e-6 + (sleep.sleep_power() * (t_star * 2.0)).value(), 1e-15);
}

TEST_F(PowerModelFixture, DecideExactBreakevenPrefersStayingOn) {
  const Watts p_idle{0.4};
  const Seconds t_star = sleep.breakeven_time(p_idle);
  EXPECT_FALSE(sleep.decide(t_star, p_idle).shutdown);
}

TEST_F(PowerModelFixture, DecideRejectsNegativeGap) {
  EXPECT_THROW((void)sleep.decide(Seconds{-1.0}, Watts{0.4}), std::invalid_argument);
}

TEST(SleepModelConfig, RejectsNegativeParameters) {
  EXPECT_THROW(SleepModel(Watts{-1.0}, Joules{1.0}), std::invalid_argument);
  EXPECT_THROW(SleepModel(Watts{1.0}, Joules{-1.0}), std::invalid_argument);
}

// Parameterized sweep: breakeven cycles (Fig 3) decrease monotonically as
// frequency drops? No — Fig 3 *increases* with frequency in cycle terms at
// high f but the time breakeven shrinks as idle power grows.  Pin both
// directions.
class BreakevenSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BreakevenSweep, TimeBreakevenShrinksAsIdlePowerGrows) {
  const PowerModel model;
  const DvsLadder ladder(model);
  const SleepModel sleep(model);
  const std::size_t i = GetParam();
  if (i + 1 >= ladder.size()) GTEST_SKIP();
  // Higher level => higher Vdd => more leakage => shorter breakeven time.
  EXPECT_GT(sleep.breakeven_time(ladder.level(i).idle).value(),
            sleep.breakeven_time(ladder.level(i + 1).idle).value());
}

INSTANTIATE_TEST_SUITE_P(AllLevels, BreakevenSweep,
                         ::testing::Range<std::size_t>(0, 13));

}  // namespace
}  // namespace lamps::power
