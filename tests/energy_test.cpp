// Energy-evaluator tests: hand-computable accounting cases, PS gap
// decisions, and consistency with the power model.
#include <gtest/gtest.h>

#include "energy/evaluator.hpp"
#include "power/dvs_ladder.hpp"
#include "power/power_model.hpp"
#include "power/sleep_model.hpp"
#include "sched/schedule.hpp"

namespace lamps::energy {
namespace {

using power::DvsLadder;
using power::DvsLevel;
using power::PowerModel;
using power::SleepModel;
using sched::Schedule;

class EvaluatorFixture : public ::testing::Test {
 protected:
  PowerModel model;
  DvsLadder ladder{model};
  SleepModel sleep{model};

  [[nodiscard]] const DvsLevel& max_lvl() const { return ladder.max_level(); }
};

TEST_F(EvaluatorFixture, SingleTaskFullyBusyMatchesClosedForm) {
  // One processor, one task occupying the whole horizon: energy is exactly
  // P_active * t.
  const DvsLevel& lvl = max_lvl();
  const Cycles work = 1'000'000;
  Schedule s(1, 1);
  s.place(0, 0, 0, work);
  const Seconds t = cycles_to_time(work, lvl.f);
  const EnergyBreakdown e = evaluate_energy(s, lvl, t, sleep);
  EXPECT_NEAR(e.total().value(), (lvl.active.total() * t).value(), 1e-15);
  EXPECT_NEAR(e.dynamic.value(), (lvl.active.dynamic * t).value(), 1e-18);
  EXPECT_EQ(e.shutdowns, 0u);
}

TEST_F(EvaluatorFixture, IdleTailChargedAtIdlePowerWithoutPs) {
  const DvsLevel& lvl = max_lvl();
  const Cycles work = 1'000'000;
  Schedule s(1, 1);
  s.place(0, 0, 0, work);
  const Seconds busy = cycles_to_time(work, lvl.f);
  const Seconds horizon = busy * 3.0;
  const EnergyBreakdown e = evaluate_energy(s, lvl, horizon, sleep);
  const double expected =
      (lvl.active.total() * busy).value() + (lvl.idle * (horizon - busy)).value();
  EXPECT_NEAR(e.total().value(), expected, expected * 1e-12);
}

TEST_F(EvaluatorFixture, UnusedEmployedProcessorBurnsIdlePower) {
  // Two employed processors, all work on the first: the second costs
  // idle power for the whole horizon (this is what LAMPS exploits by
  // simply not employing it).
  const DvsLevel& lvl = max_lvl();
  Schedule s1(1, 1), s2(2, 1);
  s1.place(0, 0, 0, 1000);
  s2.place(0, 0, 0, 1000);
  const Seconds horizon{1e-3};
  const double e1 = evaluate_energy(s1, lvl, horizon, sleep).total().value();
  const double e2 = evaluate_energy(s2, lvl, horizon, sleep).total().value();
  EXPECT_NEAR(e2 - e1, (lvl.idle * horizon).value(), 1e-12);
}

TEST_F(EvaluatorFixture, PsShutsDownLongGapOnly) {
  const DvsLevel& lvl = max_lvl();
  const Seconds breakeven = sleep.breakeven_time(lvl.idle);

  // Long trailing gap (10x breakeven): PS must engage.
  Schedule s(1, 1);
  s.place(0, 0, 0, 1000);
  const Seconds busy = cycles_to_time(1000, lvl.f);
  const Seconds horizon_long = busy + breakeven * 10.0;
  const EnergyBreakdown with_ps =
      evaluate_energy(s, lvl, horizon_long, sleep, PsOptions{true, true});
  EXPECT_EQ(with_ps.shutdowns, 1u);
  EXPECT_NEAR(with_ps.wakeup.value(), 483e-6, 1e-12);
  const EnergyBreakdown without_ps = evaluate_energy(s, lvl, horizon_long, sleep);
  EXPECT_LT(with_ps.total().value(), without_ps.total().value());

  // Short trailing gap (half breakeven): PS must not engage.
  const Seconds horizon_short = busy + breakeven * 0.5;
  const EnergyBreakdown short_ps =
      evaluate_energy(s, lvl, horizon_short, sleep, PsOptions{true, true});
  EXPECT_EQ(short_ps.shutdowns, 0u);
  EXPECT_NEAR(short_ps.total().value(),
              evaluate_energy(s, lvl, horizon_short, sleep).total().value(), 1e-15);
}

TEST_F(EvaluatorFixture, LeadingGapRespectsOption) {
  const DvsLevel& lvl = max_lvl();
  const Seconds breakeven = sleep.breakeven_time(lvl.idle);
  const auto lead_cycles = static_cast<Cycles>(breakeven * lvl.f * 20.0);

  Schedule s(1, 1);
  s.place(0, 0, lead_cycles, lead_cycles + 1000);
  const Seconds horizon = cycles_to_time(lead_cycles + 1000, lvl.f);

  const EnergyBreakdown allowed =
      evaluate_energy(s, lvl, horizon, sleep, PsOptions{true, true});
  EXPECT_EQ(allowed.shutdowns, 1u);
  const EnergyBreakdown blocked =
      evaluate_energy(s, lvl, horizon, sleep, PsOptions{true, false});
  EXPECT_EQ(blocked.shutdowns, 0u);
  EXPECT_GT(blocked.total().value(), allowed.total().value());
}

TEST_F(EvaluatorFixture, InternalGapShutdown) {
  const DvsLevel& lvl = max_lvl();
  const Seconds breakeven = sleep.breakeven_time(lvl.idle);
  const auto gap_cycles = static_cast<Cycles>(breakeven * lvl.f * 5.0);

  Schedule s(1, 2);
  s.place(0, 0, 0, 1000);
  s.place(1, 0, 1000 + gap_cycles, 1000 + gap_cycles + 1000);
  const Seconds horizon = cycles_to_time(s.makespan(), lvl.f);
  const EnergyBreakdown e =
      evaluate_energy(s, lvl, horizon, sleep, PsOptions{true, false});
  EXPECT_EQ(e.shutdowns, 1u);  // internal gap slept even with leading gaps blocked
  const auto gaps = shutdown_gaps(s, lvl, horizon, sleep, PsOptions{true, false});
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].begin, 1000u);
  EXPECT_EQ(gaps[0].end, 1000u + gap_cycles);
}

TEST_F(EvaluatorFixture, RejectsScheduleLargerThanHorizon) {
  const DvsLevel& lvl = max_lvl();
  Schedule s(1, 1);
  s.place(0, 0, 0, 1'000'000);
  const Seconds too_short = cycles_to_time(1'000'000, lvl.f) * 0.5;
  EXPECT_THROW((void)evaluate_energy(s, lvl, too_short, sleep), std::invalid_argument);
}

TEST_F(EvaluatorFixture, ExactFitHorizonAccepted) {
  const DvsLevel& lvl = max_lvl();
  Schedule s(1, 1);
  s.place(0, 0, 0, 123'456);
  const Seconds exact = cycles_to_time(123'456, lvl.f);
  EXPECT_NO_THROW((void)evaluate_energy(s, lvl, exact, sleep));
}

TEST_F(EvaluatorFixture, LowerLevelUsesLessPowerButMoreTime) {
  // Same schedule evaluated at critical vs max level, horizon fixed: at or
  // above the critical level, slower always wins on total energy when the
  // processor stays on to the horizon either way.
  const DvsLevel& hi = max_lvl();
  const DvsLevel& crit = ladder.critical_level();
  Schedule s(1, 1);
  s.place(0, 0, 0, 1'000'000);
  const Seconds horizon = cycles_to_time(1'000'000, crit.f) * 1.5;
  const double e_hi = evaluate_energy(s, hi, horizon, sleep).total().value();
  const double e_crit = evaluate_energy(s, crit, horizon, sleep).total().value();
  EXPECT_LT(e_crit, e_hi);
}

TEST_F(EvaluatorFixture, ShutdownGapsEmptyWithoutPs) {
  const DvsLevel& lvl = max_lvl();
  Schedule s(1, 1);
  s.place(0, 0, 0, 100);
  EXPECT_TRUE(shutdown_gaps(s, lvl, Seconds{1.0}, sleep, PsOptions{false, true}).empty());
}

// Parameterized: energy accounting identity across every ladder level —
// components must sum to total and all be non-negative.
class LevelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LevelSweep, BreakdownComponentsSumToTotal) {
  const PowerModel model;
  const DvsLadder ladder(model);
  const SleepModel sleep(model);
  if (GetParam() >= ladder.size()) GTEST_SKIP();
  const DvsLevel& lvl = ladder.level(GetParam());

  Schedule s(2, 3);
  s.place(0, 0, 0, 5'000'000);
  s.place(1, 0, 9'000'000, 14'000'000);
  s.place(2, 1, 2'000'000, 6'000'000);
  const Seconds horizon = cycles_to_time(20'000'000, lvl.f);
  const EnergyBreakdown e =
      evaluate_energy(s, lvl, horizon, sleep, PsOptions{true, true});
  EXPECT_GE(e.dynamic.value(), 0.0);
  EXPECT_GE(e.leakage.value(), 0.0);
  EXPECT_GE(e.intrinsic.value(), 0.0);
  EXPECT_GE(e.sleep.value(), 0.0);
  EXPECT_GE(e.wakeup.value(), 0.0);
  const double sum = e.dynamic.value() + e.leakage.value() + e.intrinsic.value() +
                     e.sleep.value() + e.wakeup.value();
  EXPECT_NEAR(e.total().value(), sum, 1e-15);
  // PS can only reduce energy relative to no PS.
  const EnergyBreakdown plain = evaluate_energy(s, lvl, horizon, sleep);
  EXPECT_LE(e.total().value(), plain.total().value() * (1.0 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(AllLevels, LevelSweep, ::testing::Range<std::size_t>(0, 14));

}  // namespace
}  // namespace lamps::energy
