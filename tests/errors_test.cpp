// Tests for the fault-tolerance substrate: the error taxonomy, cooperative
// cancellation, atomic output files and the experiment journal.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "exp/journal.hpp"
#include "util/cancel.hpp"
#include "util/csv.hpp"
#include "util/errors.hpp"

namespace lamps {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- taxonomy --

TEST(Errors, CodesRoundTripThroughWireNames) {
  for (const ErrorCode c :
       {ErrorCode::kNone, ErrorCode::kIniParse, ErrorCode::kIniValue, ErrorCode::kStgParse,
        ErrorCode::kGraphStructure, ErrorCode::kConfig, ErrorCode::kScheduleInvalid,
        ErrorCode::kCellTimeout, ErrorCode::kCancelled, ErrorCode::kIo,
        ErrorCode::kInternal}) {
    EXPECT_EQ(error_code_from_string(to_string(c)), c) << to_string(c);
    EXPECT_EQ(to_string(c).substr(0, 2), "E_");
  }
  EXPECT_EQ(error_code_from_string("no-such-code"), ErrorCode::kInternal);
}

TEST(Errors, ExitCodesFollowTheDocumentedMap) {
  for (const ErrorCode c : {ErrorCode::kIniParse, ErrorCode::kIniValue,
                            ErrorCode::kStgParse, ErrorCode::kGraphStructure,
                            ErrorCode::kConfig})
    EXPECT_EQ(exit_code_for(c), 2) << to_string(c);
  EXPECT_EQ(exit_code_for(ErrorCode::kScheduleInvalid), 3);
  EXPECT_EQ(exit_code_for(ErrorCode::kCellTimeout), 4);
  EXPECT_EQ(exit_code_for(ErrorCode::kCancelled), 4);
  EXPECT_EQ(exit_code_for(ErrorCode::kIo), 5);
  EXPECT_EQ(exit_code_for(ErrorCode::kInternal), 1);
  EXPECT_EQ(kExitPartialFailure, 6);
}

TEST(Errors, WhatComposesCodeContextAndHint) {
  const InputError e(ErrorCode::kStgParse, "negative weight", "f.stg:7", "fix the file");
  EXPECT_EQ(e.code(), ErrorCode::kStgParse);
  EXPECT_EQ(e.message(), "negative weight");
  EXPECT_EQ(e.context(), "f.stg:7");
  EXPECT_EQ(e.hint(), "fix the file");
  EXPECT_FALSE(e.retryable());
  const std::string what = e.what();
  EXPECT_NE(what.find("E_STG_PARSE"), std::string::npos);
  EXPECT_NE(what.find("negative weight"), std::string::npos);
  EXPECT_NE(what.find("f.stg:7"), std::string::npos);
  EXPECT_NE(what.find("fix the file"), std::string::npos);
  // Bare errors stay bare.
  EXPECT_STREQ(Error(ErrorCode::kInternal, "boom").what(), "E_INTERNAL: boom");
  EXPECT_TRUE(Error(ErrorCode::kIo, "disk", {}, {}, /*retryable=*/true).retryable());
}

TEST(Errors, SubclassesAreCatchableAsError) {
  try {
    throw ValidationError(ErrorCode::kScheduleInvalid, "overlap on proc 2");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kScheduleInvalid);
  }
}

// --------------------------------------------------------- cancellation --

TEST(Cancel, TokenHonorsExplicitCancel) {
  CancelToken token;  // no deadline
  EXPECT_FALSE(token.expired());
  EXPECT_NO_THROW(token.check("test"));
  token.cancel();
  EXPECT_TRUE(token.expired());
  try {
    token.check("test/loop");
    FAIL() << "cancelled token passed check";
  } catch (const TimeoutError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
    EXPECT_EQ(e.context(), "test/loop");
  }
}

TEST(Cancel, TokenHonorsDeadline) {
  CancelToken token(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  try {
    token.check("test");
    FAIL() << "expired deadline passed check";
  } catch (const TimeoutError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCellTimeout);
  }
}

TEST(Cancel, ScopeInstallsAndRestores) {
  EXPECT_EQ(current_cancel_token(), nullptr);
  CancelToken outer;
  {
    CancelScope a(&outer);
    EXPECT_EQ(current_cancel_token(), &outer);
    CancelToken inner;
    {
      CancelScope b(&inner);
      EXPECT_EQ(current_cancel_token(), &inner);
    }
    EXPECT_EQ(current_cancel_token(), &outer);
  }
  EXPECT_EQ(current_cancel_token(), nullptr);
}

TEST(Cancel, CheckpointIsNoOpWithoutToken) {
  for (unsigned i = 0; i < 3 * kCancelPollStride; ++i)
    EXPECT_NO_THROW(cancel_checkpoint("test"));
}

TEST(Cancel, CheckpointSeesCancellationWithinOneStride) {
  CancelToken token;
  CancelScope scope(&token);
  token.cancel();
  unsigned calls = 0;
  try {
    for (;; ++calls) cancel_checkpoint("test");
  } catch (const TimeoutError&) {
  }
  EXPECT_LE(calls, kCancelPollStride);
}

// ----------------------------------------------------------- AtomicFile --

TEST(AtomicFile, CommitMakesContentVisibleAtomically) {
  const fs::path dir = fs::temp_directory_path() / "lamps_atomicfile_test";
  fs::create_directories(dir);
  const std::string path = (dir / "out.csv").string();
  {
    std::ofstream prev(path);
    prev << "old\n";
  }
  {
    AtomicFile file(path);
    file.stream() << "new content\n";
    // Not yet committed: readers still see the old file.
    std::ifstream is(path);
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "old");
    file.commit();
  }
  std::ifstream is(path);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "new content");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove_all(dir);
}

TEST(AtomicFile, AbandonedWriterLeavesTargetUntouched) {
  const fs::path dir = fs::temp_directory_path() / "lamps_atomicfile_test2";
  fs::create_directories(dir);
  const std::string path = (dir / "out.csv").string();
  {
    AtomicFile file(path);
    file.stream() << "half-written";
    // no commit(): destructor must clean up the temp file
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove_all(dir);
}

// -------------------------------------------------------------- journal --

exp::JournalRecord sample_record() {
  exp::JournalRecord rec;
  rec.tag = "coarse";
  rec.group = "50";
  rec.graph = "rand50_3";
  rec.deadline_factor = 1.5;
  rec.strategy = "LAMPS+PS";
  rec.outcome = core::CellOutcome::kOk;
  rec.error = ErrorCode::kNone;
  rec.retries = 1;
  rec.feasible = true;
  rec.energy_j = 0.123456789012345678;  // exercises %.17g round-trip
  rec.num_procs = 7;
  rec.level_index = 3;
  rec.schedules_computed = 42;
  rec.parallelism = 5.0294117647058822;
  rec.total_work = 740900000;
  rec.seconds = 4.3587999999999997e-05;
  return rec;
}

TEST(Journal, LineRoundTripsBitExactly) {
  const exp::JournalRecord rec = sample_record();
  const std::string line = exp::journal_line(rec);
  const auto parsed = exp::parse_journal_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tag, rec.tag);
  EXPECT_EQ(parsed->graph, rec.graph);
  EXPECT_EQ(parsed->strategy, rec.strategy);
  EXPECT_EQ(parsed->outcome, rec.outcome);
  EXPECT_EQ(parsed->retries, rec.retries);
  // Bit-exact doubles, not approximately-equal ones: resume must replay the
  // identical value.
  EXPECT_EQ(parsed->energy_j, rec.energy_j);
  EXPECT_EQ(parsed->parallelism, rec.parallelism);
  EXPECT_EQ(parsed->seconds, rec.seconds);
  EXPECT_EQ(parsed->total_work, rec.total_work);
  // Serializing the parse yields the same bytes.
  EXPECT_EQ(exp::journal_line(*parsed), line);
}

TEST(Journal, MessagesWithSpecialCharactersRoundTrip) {
  exp::JournalRecord rec = sample_record();
  rec.outcome = core::CellOutcome::kFailed;
  rec.error = ErrorCode::kScheduleInvalid;
  rec.message = "task \"a,b\" overlaps\n\tproc 2 \\ slot 1";
  const auto parsed = exp::parse_journal_line(exp::journal_line(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->message, rec.message);
  EXPECT_EQ(parsed->error, ErrorCode::kScheduleInvalid);
}

TEST(Journal, RejectsCorruptionAndTruncation) {
  const std::string line = exp::journal_line(sample_record());
  // Truncation (SIGKILL mid-write) at any point must be rejected.
  for (const std::size_t len : {line.size() - 1, line.size() / 2, std::size_t{1}})
    EXPECT_FALSE(exp::parse_journal_line(line.substr(0, len)).has_value()) << len;
  // A flipped payload byte passes JSON scanning but fails the digest.
  std::string tampered = line;
  const auto pos = tampered.find("rand50_3");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos] = 'x';
  EXPECT_FALSE(exp::parse_journal_line(tampered).has_value());
  EXPECT_FALSE(exp::parse_journal_line("not json at all").has_value());
  EXPECT_FALSE(exp::parse_journal_line("{}").has_value());
}

TEST(Journal, AppendLoadRoundTripAndLaterRecordWins) {
  const fs::path dir = fs::temp_directory_path() / "lamps_journal_test";
  fs::create_directories(dir);
  const std::string path = (dir / "j.jsonl").string();

  exp::JournalRecord first = sample_record();
  first.outcome = core::CellOutcome::kTimeout;
  first.error = ErrorCode::kCellTimeout;
  exp::JournalRecord second = sample_record();  // same cell, now OK
  exp::JournalRecord other = sample_record();
  other.graph = "rand50_4";
  {
    exp::Journal journal;
    journal.open(path, /*truncate=*/true);
    journal.append(first);
    journal.append(other);
    journal.append(second);
  }
  const exp::JournalContents contents = exp::Journal::load(path);
  EXPECT_EQ(contents.lines_total, 3u);
  EXPECT_EQ(contents.lines_dropped, 0u);
  ASSERT_EQ(contents.records.size(), 2u);  // first/second share a key
  const auto it = contents.records.find(
      exp::journal_key("coarse", "50", "rand50_3", 1.5, "LAMPS+PS"));
  ASSERT_NE(it, contents.records.end());
  EXPECT_EQ(it->second.outcome, core::CellOutcome::kOk) << "later record must win";

  // A truncated trailing line is dropped, the rest survives.
  std::ofstream(path, std::ios::app) << exp::journal_line(other).substr(0, 30);
  const exp::JournalContents partial = exp::Journal::load(path);
  EXPECT_EQ(partial.lines_dropped, 1u);
  EXPECT_EQ(partial.records.size(), 2u);

  EXPECT_TRUE(exp::Journal::load((dir / "missing.jsonl").string()).records.empty());
  fs::remove_all(dir);
}

TEST(Journal, RestoreInstanceInvertsMakeRecord) {
  core::InstanceResult r;
  r.group = "100";
  r.graph_name = "rand100_7";
  r.deadline_factor = 4.0;
  r.strategy = core::StrategyKind::kLimitMf;
  r.feasible = true;
  r.energy = Joules{0.375};
  r.num_procs = 5;
  r.level_index = 2;
  r.schedules_computed = 11;
  r.parallelism = 3.25;
  r.total_work = 12345;
  r.seconds = 0.5;
  const core::InstanceResult back =
      exp::restore_instance(exp::make_journal_record("fine", r));
  EXPECT_EQ(back.group, r.group);
  EXPECT_EQ(back.graph_name, r.graph_name);
  EXPECT_EQ(back.strategy, r.strategy);
  EXPECT_EQ(back.energy.value(), r.energy.value());
  EXPECT_EQ(back.seconds, r.seconds);
  EXPECT_EQ(back.outcome, core::CellOutcome::kOk);
  EXPECT_TRUE(back.from_journal);
  EXPECT_EQ(exp::journal_key("fine", back), exp::journal_key("fine", r));
}

}  // namespace
}  // namespace lamps
