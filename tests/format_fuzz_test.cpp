// Property-style round-trip tests for the interchange formats, driven by
// the random generator suite: whatever the suite can produce must survive
// STG write/read and schedule-JSON write/read bit-exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/analysis.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule_io.hpp"
#include "stg/format.hpp"
#include "stg/random_gen.hpp"
#include "stg/structured.hpp"
#include "stg/suite.hpp"

namespace lamps::stg {
namespace {

struct FuzzCase {
  std::size_t num_tasks;
  std::size_t variant;
};

class FormatRoundTrip : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FormatRoundTrip, StgPreservesStructureAndSchedulability) {
  const FuzzCase fc = GetParam();
  const auto specs = random_group_specs(fc.num_tasks, fc.variant + 1);
  const graph::TaskGraph g = generate_random(specs[fc.variant]);

  std::stringstream ss;
  write_stg(g, ss);
  const graph::TaskGraph h = read_stg(ss);

  ASSERT_EQ(h.num_tasks(), g.num_tasks());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.total_work(), g.total_work());
  EXPECT_EQ(graph::critical_path_length(h), graph::critical_path_length(g));
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(h.weight(v), g.weight(v));
    EXPECT_EQ(h.in_degree(v), g.in_degree(v));
    EXPECT_EQ(h.out_degree(v), g.out_degree(v));
  }
  // The round-tripped graph schedules identically (same LS-EDF makespan).
  const Cycles deadline = 4 * graph::critical_path_length(g);
  EXPECT_EQ(sched::list_schedule_edf(h, 4, deadline).makespan(),
            sched::list_schedule_edf(g, 4, deadline).makespan());
}

TEST_P(FormatRoundTrip, ScheduleJsonRoundTripsForThisGraph) {
  const FuzzCase fc = GetParam();
  const auto specs = random_group_specs(fc.num_tasks, fc.variant + 1);
  const graph::TaskGraph g = generate_random(specs[fc.variant]);
  const sched::Schedule s = sched::list_schedule_edf(g, 3, 10 * g.total_work());

  std::stringstream ss;
  sched::write_schedule_json(s, ss);
  const sched::Schedule t = sched::read_schedule_json(ss);
  EXPECT_EQ(t.makespan(), s.makespan());
  EXPECT_EQ(sched::validate_schedule(t, g), "");
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (const std::size_t n : {5UL, 17UL, 64UL, 150UL})
    for (std::size_t v = 0; v < 4; ++v) cases.push_back(FuzzCase{n, v});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(SuiteGraphs, FormatRoundTrip, ::testing::ValuesIn(fuzz_cases()),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(pinfo.param.num_tasks) + "_v" +
                                  std::to_string(pinfo.param.variant);
                         });

TEST(FormatStructured, StructuredFamiliesRoundTrip) {
  for (const graph::TaskGraph& g :
       {gaussian_elimination(8), fft_butterfly(4), out_tree(5), in_tree(5),
        divide_and_conquer(4), wavefront(6, 5)}) {
    std::stringstream ss;
    write_stg(g, ss);
    const graph::TaskGraph h = read_stg(ss);
    EXPECT_EQ(h.num_tasks(), g.num_tasks()) << g.name();
    EXPECT_EQ(h.num_edges(), g.num_edges()) << g.name();
    EXPECT_EQ(graph::critical_path_length(h), graph::critical_path_length(g)) << g.name();
  }
}

TEST(FormatStructured, AppGraphsRoundTrip) {
  for (const graph::TaskGraph& g : application_graphs()) {
    std::stringstream ss;
    write_stg(g, ss);
    const graph::TaskGraph h = read_stg(ss);
    EXPECT_EQ(h.num_edges(), g.num_edges()) << g.name();
    EXPECT_EQ(h.total_work(), g.total_work()) << g.name();
  }
}

}  // namespace
}  // namespace lamps::stg
