// Property-style round-trip tests for the interchange formats, driven by
// the random generator suite: whatever the suite can produce must survive
// STG write/read and schedule-JSON write/read bit-exactly.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graph/analysis.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule_io.hpp"
#include "stg/format.hpp"
#include "stg/random_gen.hpp"
#include "stg/structured.hpp"
#include "stg/suite.hpp"
#include "util/errors.hpp"

namespace lamps::stg {
namespace {

struct FuzzCase {
  std::size_t num_tasks;
  std::size_t variant;
};

class FormatRoundTrip : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FormatRoundTrip, StgPreservesStructureAndSchedulability) {
  const FuzzCase fc = GetParam();
  const auto specs = random_group_specs(fc.num_tasks, fc.variant + 1);
  const graph::TaskGraph g = generate_random(specs[fc.variant]);

  std::stringstream ss;
  write_stg(g, ss);
  const graph::TaskGraph h = read_stg(ss);

  ASSERT_EQ(h.num_tasks(), g.num_tasks());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.total_work(), g.total_work());
  EXPECT_EQ(graph::critical_path_length(h), graph::critical_path_length(g));
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(h.weight(v), g.weight(v));
    EXPECT_EQ(h.in_degree(v), g.in_degree(v));
    EXPECT_EQ(h.out_degree(v), g.out_degree(v));
  }
  // The round-tripped graph schedules identically (same LS-EDF makespan).
  const Cycles deadline = 4 * graph::critical_path_length(g);
  EXPECT_EQ(sched::list_schedule_edf(h, 4, deadline).makespan(),
            sched::list_schedule_edf(g, 4, deadline).makespan());
}

TEST_P(FormatRoundTrip, ScheduleJsonRoundTripsForThisGraph) {
  const FuzzCase fc = GetParam();
  const auto specs = random_group_specs(fc.num_tasks, fc.variant + 1);
  const graph::TaskGraph g = generate_random(specs[fc.variant]);
  const sched::Schedule s = sched::list_schedule_edf(g, 3, 10 * g.total_work());

  std::stringstream ss;
  sched::write_schedule_json(s, ss);
  const sched::Schedule t = sched::read_schedule_json(ss);
  EXPECT_EQ(t.makespan(), s.makespan());
  EXPECT_EQ(sched::validate_schedule(t, g), "");
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (const std::size_t n : {5UL, 17UL, 64UL, 150UL})
    for (std::size_t v = 0; v < 4; ++v) cases.push_back(FuzzCase{n, v});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(SuiteGraphs, FormatRoundTrip, ::testing::ValuesIn(fuzz_cases()),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(pinfo.param.num_tasks) + "_v" +
                                  std::to_string(pinfo.param.variant);
                         });

TEST(FormatStructured, StructuredFamiliesRoundTrip) {
  for (const graph::TaskGraph& g :
       {gaussian_elimination(8), fft_butterfly(4), out_tree(5), in_tree(5),
        divide_and_conquer(4), wavefront(6, 5)}) {
    std::stringstream ss;
    write_stg(g, ss);
    const graph::TaskGraph h = read_stg(ss);
    EXPECT_EQ(h.num_tasks(), g.num_tasks()) << g.name();
    EXPECT_EQ(h.num_edges(), g.num_edges()) << g.name();
    EXPECT_EQ(graph::critical_path_length(h), graph::critical_path_length(g)) << g.name();
  }
}

TEST(FormatStructured, AppGraphsRoundTrip) {
  for (const graph::TaskGraph& g : application_graphs()) {
    std::stringstream ss;
    write_stg(g, ss);
    const graph::TaskGraph h = read_stg(ss);
    EXPECT_EQ(h.num_edges(), g.num_edges()) << g.name();
    EXPECT_EQ(h.total_work(), g.total_work()) << g.name();
  }
}

// ------------------------------------------------- malformed-input cases --
// Strict-validation cases: every malformed document must be rejected with a
// typed InputError carrying the source name and line, never accepted with
// silently-guessed values and never as an untyped exception.

struct BadStgCase {
  const char* label;
  const char* text;
  ErrorCode code;
  const char* context;           ///< expected Error::context()
  const char* message_fragment;  ///< substring of Error::message()
};

class MalformedStg : public ::testing::TestWithParam<BadStgCase> {};

TEST_P(MalformedStg, RejectedWithTypedErrorAndLineContext) {
  const BadStgCase& c = GetParam();
  std::istringstream is(c.text);
  ParseOptions opts;
  opts.name = "bad.stg";
  try {
    (void)read_stg(is, opts);
    FAIL() << c.label << ": malformed input accepted";
  } catch (const InputError& e) {
    EXPECT_EQ(e.code(), c.code) << c.label << ": " << e.what();
    EXPECT_EQ(e.context(), c.context) << c.label << ": " << e.what();
    EXPECT_NE(e.message().find(c.message_fragment), std::string::npos)
        << c.label << ": " << e.what();
  }
}

// A minimal valid document for reference (1 real task):
//   1
//   0 0 0        dummy entry
//   1 5 1 0      the task, hanging off the entry
//   2 0 1 1      dummy exit
INSTANTIATE_TEST_SUITE_P(
    Cases, MalformedStg,
    ::testing::ValuesIn(std::vector<BadStgCase>{
        {"empty", "", ErrorCode::kStgParse, "bad.stg", "empty input"},
        {"garbage_count", "xyz\n", ErrorCode::kStgParse, "bad.stg:1",
         "task count is not a non-negative integer"},
        {"count_with_trailing", "1 2 3\n", ErrorCode::kStgParse, "bad.stg:1",
         "header line must hold exactly the task count"},
        {"prefix_number", "1\n0 0 0\n1 12xyz 1 0\n2 0 1 1\n", ErrorCode::kStgParse,
         "bad.stg:3", "not a non-negative integer: '12xyz'"},
        {"negative_weight", "1\n0 0 0\n1 -5 1 0\n2 0 1 1\n", ErrorCode::kStgParse,
         "bad.stg:3", "processing time is negative"},
        {"duplicate_task_id", "2\n0 0 0\n1 5 1 0\n1 5 1 0\n3 0 1 1\n",
         ErrorCode::kStgParse, "bad.stg:4", "task ids must be consecutive"},
        {"non_consecutive_id", "2\n0 0 0\n1 5 1 0\n3 5 1 0\n3 0 1 1\n",
         ErrorCode::kStgParse, "bad.stg:4", "task ids must be consecutive"},
        {"missing_weight", "1\n0 0 0\n1\n2 0 1 1\n", ErrorCode::kStgParse, "bad.stg:3",
         "missing weight/pred-count"},
        {"pred_count_mismatch", "1\n0 0 0\n1 5 2 0\n2 0 1 1\n", ErrorCode::kStgParse,
         "bad.stg:3", "expected 2 predecessor ids, found 1"},
        {"duplicate_pred", "2\n0 0 0\n1 5 1 0\n2 5 2 1 1\n3 0 1 2\n",
         ErrorCode::kStgParse, "bad.stg:4", "duplicate predecessor 1"},
        {"self_loop", "1\n0 0 0\n1 5 1 1\n2 0 1 1\n", ErrorCode::kStgParse, "bad.stg:3",
         "lists itself as predecessor"},
        {"dangling_pred", "1\n0 0 0\n1 5 1 7\n2 0 1 1\n", ErrorCode::kStgParse,
         "bad.stg:3", "dangling edge: predecessor 7"},
        {"edge_from_dummy_exit", "2\n0 0 0\n1 5 1 3\n2 5 1 1\n3 0 1 2\n",
         ErrorCode::kStgParse, "bad.stg:3", "edge from dummy exit"},
        {"too_few_lines", "2\n0 0 0\n1 5 1 0\n", ErrorCode::kStgParse, "bad.stg:3",
         "expected 4 task lines"},
        {"too_many_lines", "1\n0 0 0\n1 5 1 0\n2 0 1 1\n3 0 1 2\n", ErrorCode::kStgParse,
         "bad.stg:5", "more task lines than declared"},
        {"cycle", "2\n0 0 0\n1 5 1 2\n2 5 1 1\n3 0 1 2\n", ErrorCode::kGraphStructure,
         "bad.stg", "cycle"},
    }),
    [](const auto& pinfo) { return std::string(pinfo.param.label); });

TEST(MalformedStgFile, MissingFileIsTypedConfigError) {
  try {
    (void)read_stg_file("/nonexistent/graph.stg");
    FAIL() << "missing file accepted";
  } catch (const InputError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
    EXPECT_EQ(e.context(), "/nonexistent/graph.stg");
  }
}

}  // namespace
}  // namespace lamps::stg
