// Genetic integrated-scheduler tests.
#include <gtest/gtest.h>

#include "core/genetic.hpp"
#include "core/limits.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "stg/random_gen.hpp"

namespace lamps::core {
namespace {

using graph::TaskGraph;

class GeneticFixture : public ::testing::Test {
 protected:
  power::PowerModel model;
  power::DvsLadder ladder{model};

  [[nodiscard]] TaskGraph sample_graph(std::uint64_t seed) const {
    stg::RandomGraphSpec spec;
    spec.num_tasks = 40;
    spec.method = stg::GenMethod::kLayrPred;
    spec.num_layers = 8;
    spec.max_weight = 20;
    spec.seed = seed;
    return graph::scale_weights(stg::generate_random(spec), 3'100'000);
  }

  [[nodiscard]] Problem make_problem(const TaskGraph& g, double factor) const {
    Problem p;
    p.graph = &g;
    p.model = &model;
    p.ladder = &ladder;
    p.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                         model.max_frequency().value() * factor};
    return p;
  }

  [[nodiscard]] static GeneticOptions small_ga() {
    GeneticOptions o;
    o.population = 12;
    o.generations = 15;
    return o;
  }
};

TEST_F(GeneticFixture, FindsFeasibleValidSolution) {
  const TaskGraph g = sample_graph(1);
  const Problem prob = make_problem(g, 2.0);
  const StrategyResult r = genetic_schedule(prob, small_ga());
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_EQ(sched::validate_schedule(*r.schedule, g), "");
  EXPECT_LE(r.completion.value(), prob.deadline.value() * (1.0 + 1e-9));
  EXPECT_GT(r.schedules_computed, small_ga().population);
}

TEST_F(GeneticFixture, NeverWorseThanItsEdfSeed) {
  // Individual 0 of the initial population IS the EDF order over the same
  // processor bracket, so the GA result can never lose to LAMPS+PS...
  // except it draws a random processor count for that seed individual; the
  // elitist loop still guarantees monotone improvement over generations, so
  // compare against the best-of-first-generation via a 1-generation run.
  const TaskGraph g = sample_graph(2);
  const Problem prob = make_problem(g, 2.0);
  GeneticOptions one_gen = small_ga();
  one_gen.generations = 1;
  GeneticOptions full = small_ga();
  const StrategyResult early = genetic_schedule(prob, one_gen);
  const StrategyResult late = genetic_schedule(prob, full);
  ASSERT_TRUE(early.feasible && late.feasible);
  EXPECT_LE(late.energy().value(), early.energy().value() * (1.0 + 1e-12));
}

TEST_F(GeneticFixture, StaysBracketedByBoundsAndBaseline) {
  for (const double factor : {1.5, 4.0}) {
    const TaskGraph g = sample_graph(3);
    const Problem prob = make_problem(g, factor);
    const StrategyResult ga = genetic_schedule(prob, small_ga());
    const StrategyResult sns = schedule_and_stretch(prob);
    const StrategyResult lim = limit_sf(prob);
    ASSERT_TRUE(ga.feasible && sns.feasible && lim.feasible);
    EXPECT_GE(ga.energy().value(), lim.energy().value() * (1.0 - 1e-12));
    EXPECT_LE(ga.energy().value(), sns.energy().value() * (1.0 + 1e-9));
  }
}

TEST_F(GeneticFixture, DeterministicInSeed) {
  const TaskGraph g = sample_graph(4);
  const Problem prob = make_problem(g, 2.0);
  GeneticOptions o = small_ga();
  o.seed = 42;
  const StrategyResult a = genetic_schedule(prob, o);
  const StrategyResult b = genetic_schedule(prob, o);
  EXPECT_DOUBLE_EQ(a.energy().value(), b.energy().value());
  EXPECT_EQ(a.num_procs, b.num_procs);
}

TEST_F(GeneticFixture, PsOffChallengerStillFeasible) {
  const TaskGraph g = sample_graph(5);
  const Problem prob = make_problem(g, 2.0);
  GeneticOptions o = small_ga();
  o.ps = false;
  const StrategyResult ga = genetic_schedule(prob, o);
  const StrategyResult lam = lamps_schedule(prob);
  ASSERT_TRUE(ga.feasible && lam.feasible);
  EXPECT_EQ(ga.breakdown.shutdowns, 0u);
  // Without PS, the GA challenges LAMPS; allow a modest band either way.
  EXPECT_LE(ga.energy().value(), lam.energy().value() * 1.05);
}

TEST_F(GeneticFixture, RejectsDegenerateOptions) {
  const TaskGraph g = sample_graph(6);
  const Problem prob = make_problem(g, 2.0);
  GeneticOptions bad;
  bad.population = 1;
  EXPECT_THROW((void)genetic_schedule(prob, bad), std::invalid_argument);
  bad = GeneticOptions{};
  bad.generations = 0;
  EXPECT_THROW((void)genetic_schedule(prob, bad), std::invalid_argument);
}

TEST_F(GeneticFixture, EmptyGraphHandled) {
  graph::TaskGraphBuilder b;
  const TaskGraph g = b.build();
  Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = Seconds{1.0};
  EXPECT_FALSE(genetic_schedule(prob, small_ga()).feasible);
}

}  // namespace
}  // namespace lamps::core
