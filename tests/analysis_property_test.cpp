// Property tests for the graph analyses over the generator suite: the
// level identities and bounds that every DAG must satisfy.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "stg/random_gen.hpp"
#include "stg/suite.hpp"

namespace lamps::graph {
namespace {

class AnalysisProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static TaskGraph make_graph(std::uint64_t seed) {
    const auto specs = stg::random_group_specs(90, static_cast<std::size_t>(seed) + 1);
    return stg::generate_random(specs[seed]);
  }
};

TEST_P(AnalysisProperties, BottomLevelRecurrence) {
  const TaskGraph g = make_graph(GetParam());
  const auto bl = bottom_levels(g);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    Cycles best = 0;
    for (const TaskId s : g.successors(v)) best = std::max(best, bl[s]);
    EXPECT_EQ(bl[v], g.weight(v) + best) << v;
  }
}

TEST_P(AnalysisProperties, TopLevelRecurrence) {
  const TaskGraph g = make_graph(GetParam());
  const auto tl = top_levels(g);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    Cycles best = 0;
    for (const TaskId p : g.predecessors(v)) best = std::max(best, tl[p] + g.weight(p));
    EXPECT_EQ(tl[v], best) << v;
  }
}

TEST_P(AnalysisProperties, PathThroughAnyTaskBoundedByCpl) {
  const TaskGraph g = make_graph(GetParam());
  const auto bl = bottom_levels(g);
  const auto tl = top_levels(g);
  const Cycles cpl = critical_path_length(g);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    // tl(v) + bl(v) is the longest path through v; never exceeds the CPL.
    EXPECT_LE(tl[v] + bl[v], cpl) << v;
  }
}

TEST_P(AnalysisProperties, CriticalPathIsConsistent) {
  const TaskGraph g = make_graph(GetParam());
  const auto path = critical_path(g);
  ASSERT_FALSE(path.empty());
  Cycles sum = 0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    sum += g.weight(path[i]);
    if (i > 0) {
      EXPECT_TRUE(has_edge(g, path[i - 1], path[i]));
    }
  }
  EXPECT_EQ(sum, critical_path_length(g));
  EXPECT_EQ(g.in_degree(path.front()), 0u);
  EXPECT_EQ(g.out_degree(path.back()), 0u);
}

TEST_P(AnalysisProperties, ParallelismBounds) {
  const TaskGraph g = make_graph(GetParam());
  const double par = average_parallelism(g);
  EXPECT_GE(par, 1.0 - 1e-12);
  EXPECT_LE(par, static_cast<double>(g.num_tasks()));
  // ASAP concurrency is a realizable overlap, so it bounds nothing below
  // parallelism in general, but both are at most |V| and at least 1.
  const std::size_t width = asap_max_concurrency(g);
  EXPECT_GE(width, 1u);
  EXPECT_LE(width, g.num_tasks());
}

TEST_P(AnalysisProperties, TopologicalOrderIsValid) {
  const TaskGraph g = make_graph(GetParam());
  std::vector<std::size_t> pos(g.num_tasks());
  const auto topo = g.topological_order();
  ASSERT_EQ(topo.size(), g.num_tasks());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    for (const TaskId s : g.successors(v)) EXPECT_LT(pos[v], pos[s]);
}

TEST_P(AnalysisProperties, SourceSinkInvariants) {
  const TaskGraph g = make_graph(GetParam());
  std::size_t sources = 0, sinks = 0;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    sources += g.in_degree(v) == 0;
    sinks += g.out_degree(v) == 0;
  }
  EXPECT_EQ(g.sources().size(), sources);
  EXPECT_EQ(g.sinks().size(), sinks);
  EXPECT_GE(sources, 1u);
  EXPECT_GE(sinks, 1u);
}

INSTANTIATE_TEST_SUITE_P(SuiteGraphs, AnalysisProperties,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace lamps::graph
