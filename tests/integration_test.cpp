// Cross-module integration tests: the experiment runner end-to-end, the
// STG -> scheduler -> energy pipeline, and KPN-derived graphs with explicit
// per-task deadlines flowing through the full strategy stack.
#include <gtest/gtest.h>

#include <set>

#include "core/runner.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "kpn/unroll.hpp"
#include "sched/schedule.hpp"
#include "stg/format.hpp"
#include "stg/suite.hpp"

namespace lamps::core {
namespace {

using graph::TaskGraph;

class RunnerFixture : public ::testing::Test {
 protected:
  power::PowerModel model;
  power::DvsLadder ladder{model};

  [[nodiscard]] std::vector<SuiteEntry> small_suite() const {
    std::vector<SuiteEntry> entries;
    for (auto& g : stg::make_random_group(40, 4))
      entries.push_back(
          SuiteEntry{"40", graph::scale_weights(g, stg::kCoarseGrainCyclesPerUnit)});
    for (auto& g : stg::make_random_group(80, 4))
      entries.push_back(
          SuiteEntry{"80", graph::scale_weights(g, stg::kCoarseGrainCyclesPerUnit)});
    return entries;
  }
};

TEST_F(RunnerFixture, SweepProducesFullCartesianProduct) {
  const auto entries = small_suite();
  SweepConfig cfg;
  cfg.deadline_factors = {2.0, 8.0};
  cfg.threads = 2;
  const auto results = run_sweep(entries, model, ladder, cfg);
  EXPECT_EQ(results.size(), entries.size() * 2 * kAllStrategies.size());

  // Deterministic order: grouped by entry, then factor, then strategy.
  EXPECT_EQ(results[0].graph_name, entries[0].graph.name());
  EXPECT_EQ(results[0].strategy, StrategyKind::kSns);
  EXPECT_DOUBLE_EQ(results[0].deadline_factor, 2.0);
  EXPECT_EQ(results[1].strategy, StrategyKind::kLamps);

  for (const InstanceResult& r : results) {
    EXPECT_TRUE(r.feasible) << r.graph_name << " " << to_string(r.strategy);
    EXPECT_GT(r.energy.value(), 0.0);
    EXPECT_GT(r.parallelism, 0.0);
    EXPECT_GT(r.total_work, 0u);
  }
}

TEST_F(RunnerFixture, SweepIsDeterministicAcrossThreadCounts) {
  const auto entries = small_suite();
  SweepConfig cfg;
  cfg.deadline_factors = {2.0};
  cfg.threads = 1;
  const auto seq = run_sweep(entries, model, ladder, cfg);
  cfg.threads = 4;
  const auto par = run_sweep(entries, model, ladder, cfg);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].graph_name, par[i].graph_name);
    EXPECT_DOUBLE_EQ(seq[i].energy.value(), par[i].energy.value());
    EXPECT_EQ(seq[i].num_procs, par[i].num_procs);
  }
}

TEST_F(RunnerFixture, AggregateRelativeBaselineIsUnity) {
  const auto entries = small_suite();
  SweepConfig cfg;
  cfg.deadline_factors = {2.0, 8.0};
  const auto results = run_sweep(entries, model, ladder, cfg);
  const auto agg = aggregate_relative(results);

  std::set<std::string> groups;
  for (const GroupRelative& g : agg) {
    groups.insert(g.group);
    if (g.strategy == StrategyKind::kSns) {
      EXPECT_NEAR(g.mean_relative_energy, 1.0, 1e-12);
      EXPECT_EQ(g.num_graphs, 4u);
    }
    // Bounds and improved heuristics stay at or below the baseline.
    if (g.strategy == StrategyKind::kLamps || g.strategy == StrategyKind::kLampsPs ||
        g.strategy == StrategyKind::kLimitSf || g.strategy == StrategyKind::kLimitMf) {
      EXPECT_LE(g.mean_relative_energy, 1.0 + 1e-9)
          << g.group << " " << to_string(g.strategy);
    }
  }
  EXPECT_EQ(groups, (std::set<std::string>{"40", "80"}));
}

TEST_F(RunnerFixture, LooseDeadlinesImproveLampsRelativeSavings) {
  // Paper section 5.2: LAMPS improves on S&S mainly for loose deadlines.
  const auto entries = small_suite();
  SweepConfig cfg;
  cfg.deadline_factors = {1.5, 8.0};
  const auto agg = aggregate_relative(run_sweep(entries, model, ladder, cfg));
  double rel_tight = 0, rel_loose = 0;
  int n = 0;
  for (const GroupRelative& g : agg)
    if (g.strategy == StrategyKind::kLamps) {
      (g.deadline_factor == 1.5 ? rel_tight : rel_loose) += g.mean_relative_energy;
      ++n;
    }
  ASSERT_EQ(n, 4);
  EXPECT_LT(rel_loose, rel_tight);
}

// ---------------------------------------------------- STG file pipeline --

TEST_F(RunnerFixture, StgRoundTripFeedsScheduler) {
  const TaskGraph g0 = stg::application_graphs()[1];  // robot
  std::stringstream ss;
  stg::write_stg(g0, ss);
  const TaskGraph g = graph::scale_weights(stg::read_stg(ss),
                                           stg::kCoarseGrainCyclesPerUnit);

  Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                          model.max_frequency().value() * 2.0};
  const StrategyResult r = lamps_schedule_ps(prob);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(sched::validate_schedule(*r.schedule, g), "");
}

// --------------------------------------------------------- KPN pipeline --

TEST_F(RunnerFixture, KpnUnrolledGraphSchedulesWithExplicitDeadlines) {
  kpn::Kpn net("pipe");
  const auto src = net.add_process("src", 20'000'000);
  const auto fil = net.add_process("filter", 60'000'000);
  const auto snk = net.add_process("sink", 20'000'000);
  net.add_channel(src, fil, 0);
  net.add_channel(fil, snk, 0);

  kpn::UnrollOptions uo;
  uo.copies = 6;
  uo.first_deadline = Seconds{0.08};
  uo.throughput = 25.0;  // one iteration each 40 ms
  const TaskGraph g = kpn::unroll(net, uo);
  ASSERT_TRUE(g.has_explicit_deadlines());

  Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  // Global deadline: last copy's deadline.
  prob.deadline = Seconds{0.08 + 5 * 0.04};

  for (const StrategyKind k : kHeuristics) {
    const StrategyResult r = run_strategy(k, prob);
    ASSERT_TRUE(r.feasible) << to_string(k);
    const power::DvsLevel& lvl = ladder.level(r.level_index);
    // Every explicit deadline is honored at the chosen level.
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      if (const auto d = g.explicit_deadline(v)) {
        const double finish =
            static_cast<double>(r.schedule->placement(v).finish) / lvl.f.value();
        EXPECT_LE(finish, d->value() * (1.0 + 1e-9))
            << to_string(k) << " task " << g.label(v);
      }
    }
  }
}

TEST_F(RunnerFixture, ThroughputConstraintForcesFasterLevel) {
  // Halving the period forces the scheduler to keep a higher frequency.
  kpn::Kpn net("pipe");
  const auto a = net.add_process("a", 50'000'000);
  const auto b = net.add_process("b", 50'000'000);
  net.add_channel(a, b, 0);

  const auto level_for = [&](double throughput) {
    kpn::UnrollOptions uo;
    uo.copies = 4;
    uo.first_deadline = Seconds{1.0 / throughput};
    uo.throughput = throughput;
    const TaskGraph g = kpn::unroll(net, uo);
    Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{4.0 / throughput};
    const StrategyResult r = schedule_and_stretch(prob);
    EXPECT_TRUE(r.feasible);
    return r.level_index;
  };
  EXPECT_LT(level_for(8.0), level_for(24.0));
}

}  // namespace
}  // namespace lamps::core
