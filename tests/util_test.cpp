// Unit tests for the util substrate: units, RNG, CSV, tables, CLI parsing,
// thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace lamps {
namespace {

using namespace lamps::unit_literals;

// ---------------------------------------------------------------- units --

TEST(Units, ArithmeticPreservesDimension) {
  const Watts p = 2.0_W + 0.5_W;
  EXPECT_DOUBLE_EQ(p.value(), 2.5);
  EXPECT_DOUBLE_EQ((p - 0.5_W).value(), 2.0);
  EXPECT_DOUBLE_EQ((p * 2.0).value(), 5.0);
  EXPECT_DOUBLE_EQ((2.0 * p).value(), 5.0);
  EXPECT_DOUBLE_EQ((p / 2.0).value(), 1.25);
}

TEST(Units, SameDimensionRatioIsDimensionless) {
  const double ratio = 3.0_J / 1.5_J;
  EXPECT_DOUBLE_EQ(ratio, 2.0);
}

TEST(Units, PowerTimesTimeIsEnergy) {
  const Joules e = 2.0_W * 3.0_s;
  EXPECT_DOUBLE_EQ(e.value(), 6.0);
  EXPECT_DOUBLE_EQ((3.0_s * 2.0_W).value(), 6.0);
  EXPECT_DOUBLE_EQ((e / 3.0_s).value(), 2.0);
  EXPECT_DOUBLE_EQ((e / 2.0_W).value(), 3.0);
}

TEST(Units, CycleConversions) {
  EXPECT_DOUBLE_EQ(cycles_to_time(3'100'000'000ULL, 3.1_GHz).value(), 1.0);
  EXPECT_DOUBLE_EQ(required_frequency(1000, 1.0_us).value(), 1e9);
  EXPECT_DOUBLE_EQ(1.0_s * 2.0_Hz, 2.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(1.0_V, 1.1_V);
  EXPECT_EQ(1.0_V, 1.0_V);
  EXPECT_GT(50.0_uW * 2.0, 90.0_uW);
}

TEST(Units, CompoundAssignment) {
  Joules e{1.0};
  e += Joules{2.0};
  e -= Joules{0.5};
  EXPECT_DOUBLE_EQ(e.value(), 2.5);
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntegerBoundsInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng.uniform(3, 7);
    ASSERT_GE(x, 3u);
    ASSERT_LE(x, 7u);
    saw_lo |= (x == 3);
    saw_hi |= (x == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntegerSingleton) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, Uniform01InRangeAndRoughlyCentered) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> xs(50);
  std::iota(xs.begin(), xs.end(), 0);
  auto copy = xs;
  rng.shuffle(std::span<int>(xs));
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(xs, copy);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng base(23);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (f1() == f2());
  EXPECT_LT(same, 2);
}

// ------------------------------------------------------------------ csv --

TEST(Csv, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row("a", 1, 2.5);
  EXPECT_EQ(os.str(), "a,1,2.5\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row("plain", "with,comma", "with\"quote", "with\nnewline");
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(Csv, RowStrings) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row_strings({"x", "y"});
  EXPECT_EQ(os.str(), "x,y\n");
}

// ---------------------------------------------------------------- table --

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.row("alpha", 1);
  t.row("b", 22);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| b     |    22 |"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, FormattingHelpers) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(18.116, 3), "18.116");
  EXPECT_EQ(fmt_percent(0.4637), "46.4%");
}

// ------------------------------------------------------------------ cli --

TEST(Cli, ParsesOptionsAndFlags) {
  int n = 5;
  double x = 1.5;
  bool flag = false;
  std::string name = "default";
  CliParser p("test");
  p.add_option("n", "count", &n);
  p.add_option("x", "ratio", &x);
  p.add_flag("fast", "go fast", &flag);
  p.add_option("name", "a name", &name);

  const char* argv[] = {"prog", "--n=7", "--x", "2.25", "--fast", "--name=zed"};
  std::ostringstream err;
  ASSERT_TRUE(p.parse(6, argv, err)) << err.str();
  EXPECT_EQ(n, 7);
  EXPECT_DOUBLE_EQ(x, 2.25);
  EXPECT_TRUE(flag);
  EXPECT_EQ(name, "zed");
}

TEST(Cli, RejectsUnknownOption) {
  CliParser p("test");
  const char* argv[] = {"prog", "--bogus=1"};
  std::ostringstream err;
  EXPECT_FALSE(p.parse(2, argv, err));
  EXPECT_NE(err.str().find("unknown option"), std::string::npos);
}

TEST(Cli, RejectsBadNumber) {
  int n = 0;
  CliParser p("test");
  p.add_option("n", "count", &n);
  const char* argv[] = {"prog", "--n=abc"};
  std::ostringstream err;
  EXPECT_FALSE(p.parse(2, argv, err));
}

TEST(Cli, HelpReturnsFalse) {
  CliParser p("test");
  const char* argv[] = {"prog", "--help"};
  std::ostringstream err;
  EXPECT_FALSE(p.parse(2, argv, err));
  EXPECT_NE(err.str().find("Usage"), std::string::npos);
}

// ---------------------------------------------------------- thread pool --

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  parallel_for_index(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), std::invalid_argument);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> ok = pool.submit([] {});
  std::future<void> bad =
      pool.submit([] { throw std::runtime_error("worker exploded"); });
  EXPECT_NO_THROW(ok.get());
  try {
    bad.get();
    FAIL() << "exception was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker exploded");
  }
  // The worker thread survives the throw and keeps serving tasks.
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  try {
    parallel_for_index(pool, hits.size(), [&](std::size_t i) {
      ++hits[i];
      if (i == 11 || i == 42) throw std::runtime_error("idx " + std::to_string(i));
    });
    FAIL() << "exception was swallowed";
  } catch (const std::runtime_error& e) {
    // Deterministic at any thread count: the lowest failing index wins.
    EXPECT_STREQ(e.what(), "idx 11");
  }
  // Failure of one index never skips the others.
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace lamps
