// GapProfile equivalence tests: the profile-based energy evaluation must
// reproduce the naive per-gap walk bit for bit (every EnergyBreakdown
// field, not just the total), for every ladder level, with and without
// processor shutdown, across the random STG suite.  Also covers the
// level-sweep early-exit guard: best_level_with_ps must pick exactly the
// level a full naive scan picks while evaluating fewer levels.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/stretch.hpp"
#include "energy/evaluator.hpp"
#include "energy/gap_profile.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "sched/list_scheduler.hpp"
#include "stg/suite.hpp"

namespace lamps {
namespace {

const power::PowerModel& model() {
  static const power::PowerModel m;
  return m;
}
const power::DvsLadder& ladder() {
  static const power::DvsLadder l{model()};
  return l;
}

std::vector<graph::TaskGraph> test_graphs() {
  std::vector<graph::TaskGraph> out;
  for (const std::size_t size : {50UL, 100UL, 500UL}) {
    auto group = stg::make_random_group(size, 3);
    for (auto& g : group)
      out.push_back(graph::scale_weights(g, stg::kCoarseGrainCyclesPerUnit));
  }
  return out;
}

/// Horizon generous enough that the schedule fits at every ladder level.
Seconds fits_all_levels_horizon(const sched::Schedule& s) {
  return Seconds{cycles_to_time(s.makespan(), ladder().level(0).f).value() * 1.1};
}

void expect_identical(const energy::EnergyBreakdown& a, const energy::EnergyBreakdown& b) {
  // EXPECT_EQ on doubles on purpose: the contract is bit-exactness, not
  // tolerance.  GapProfile::evaluate composes the very same FP expression
  // sequence as evaluate_energy, so even the rounding must agree.
  EXPECT_EQ(a.dynamic.value(), b.dynamic.value());
  EXPECT_EQ(a.leakage.value(), b.leakage.value());
  EXPECT_EQ(a.intrinsic.value(), b.intrinsic.value());
  EXPECT_EQ(a.sleep.value(), b.sleep.value());
  EXPECT_EQ(a.wakeup.value(), b.wakeup.value());
  EXPECT_EQ(a.transition.value(), b.transition.value());
  EXPECT_EQ(a.shutdowns, b.shutdowns);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.total().value(), b.total().value());
}

TEST(GapProfileTest, MatchesNaiveEvaluatorBitForBit) {
  const power::SleepModel sleep{model()};
  std::size_t cases = 0;
  for (const graph::TaskGraph& g : test_graphs()) {
    const Cycles deadline = 2 * graph::critical_path_length(g);
    for (const std::size_t procs : {1UL, 2UL, 5UL, 13UL}) {
      const sched::Schedule s = sched::list_schedule_edf(g, procs, deadline);
      const Seconds horizon = fits_all_levels_horizon(s);
      const energy::GapProfile prof(s);
      EXPECT_EQ(prof.makespan(), s.makespan());
      EXPECT_EQ(prof.num_procs(), s.num_procs());
      for (std::size_t i = 0; i < ladder().size(); ++i) {
        const power::DvsLevel& lvl = ladder().level(i);
        for (const bool ps_on : {false, true}) {
          for (const bool leading : {false, true}) {
            const energy::PsOptions ps{ps_on, leading};
            expect_identical(prof.evaluate(lvl, horizon, sleep, ps),
                             energy::evaluate_energy(s, lvl, horizon, sleep, ps));
            ++cases;
          }
        }
      }
    }
  }
  EXPECT_GT(cases, 1000u);  // the sweep actually ran
}

TEST(GapProfileTest, GapRunProfileMatchesScheduleProfileBitForBit) {
  // The SoA core exposes two routes to a profile: from a materialized
  // Schedule, and directly from the gap-recording event loop (GapRun,
  // which never builds placements).  Both must evaluate bit-identically
  // across the random STG suite — the configuration searches mix them
  // freely and assume interchangeability.
  const power::SleepModel sleep{model()};
  sched::ListScheduleWorkspace ws;
  std::size_t cases = 0;
  for (const graph::TaskGraph& g : test_graphs()) {
    const Cycles deadline = 2 * graph::critical_path_length(g);
    const auto keys =
        sched::make_priority_keys(g, {sched::PriorityPolicy::kEdf, deadline});
    for (const std::size_t procs : {1UL, 3UL, 8UL, 21UL}) {
      const sched::Schedule s = sched::list_schedule(g, procs, keys, ws);
      const energy::GapProfile from_schedule(s);
      const energy::GapProfile from_run(sched::list_schedule_gaps(g, procs, keys, ws));
      EXPECT_EQ(from_run.makespan(), from_schedule.makespan());
      ASSERT_EQ(from_run.num_procs(), from_schedule.num_procs());
      for (sched::ProcId p = 0; p < from_run.num_procs(); ++p)
        EXPECT_EQ(from_run.busy_cycles(p), from_schedule.busy_cycles(p));
      const Seconds horizon = fits_all_levels_horizon(s);
      for (const std::size_t i : {std::size_t{0}, ladder().size() - 1})
        for (const bool ps_on : {false, true})
          for (const bool leading : {false, true}) {
            const energy::PsOptions ps{ps_on, leading};
            expect_identical(from_run.evaluate(ladder().level(i), horizon, sleep, ps),
                             from_schedule.evaluate(ladder().level(i), horizon, sleep, ps));
            ++cases;
          }
    }
  }
  EXPECT_GT(cases, 200u);  // the sweep actually ran
}

TEST(GapProfileTest, ZeroWeightAndSingleTaskEdgeCases) {
  const power::SleepModel sleep{model()};
  graph::TaskGraphBuilder b;
  b.add_task(0);                  // zero-weight source
  b.add_task(5'000'000);
  b.add_task(0);                  // zero-weight sink
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const graph::TaskGraph g = b.build();
  const sched::Schedule s = sched::list_schedule_edf(g, 3, 2 * graph::critical_path_length(g));
  const Seconds horizon = fits_all_levels_horizon(s);
  const energy::GapProfile prof(s);
  for (std::size_t i = 0; i < ladder().size(); ++i)
    for (const bool ps_on : {false, true})
      for (const bool leading : {false, true}) {
        const energy::PsOptions ps{ps_on, leading};
        expect_identical(prof.evaluate(ladder().level(i), horizon, sleep, ps),
                         energy::evaluate_energy(s, ladder().level(i), horizon, sleep, ps));
      }
}

/// Reference for the early-exit guard: the historical full scan from the
/// lowest feasible level upward using the naive evaluator, keeping the
/// slowest level on ties.
struct NaiveChoice {
  const power::DvsLevel* level{nullptr};
  energy::EnergyBreakdown breakdown{};
  std::size_t levels_evaluated{0};
};

NaiveChoice naive_best_level_with_ps(const sched::Schedule& s, const core::Problem& prob) {
  NaiveChoice best;
  const power::DvsLevel* lo = core::lowest_feasible_level(s, prob);
  if (lo == nullptr) return best;
  const power::SleepModel sleep = prob.sleep();
  const energy::PsOptions ps{true, prob.ps_allow_leading_gaps};
  for (std::size_t i = lo->index; i < prob.ladder->size(); ++i) {
    const power::DvsLevel& lvl = prob.ladder->level(i);
    const energy::EnergyBreakdown e = energy::evaluate_energy(s, lvl, prob.deadline, sleep, ps);
    ++best.levels_evaluated;
    if (best.level == nullptr || e.total() < best.breakdown.total()) {
      best.level = &lvl;
      best.breakdown = e;
    }
  }
  return best;
}

TEST(GapProfileTest, EarlyExitGuardCannotChangeTheOptimum) {
  std::size_t exits_taken = 0;
  for (const graph::TaskGraph& g : test_graphs()) {
    core::Problem prob;
    prob.graph = &g;
    prob.model = &model();
    prob.ladder = &ladder();
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model().max_frequency().value() * 2.0};
    for (const std::size_t procs : {2UL, 7UL}) {
      const sched::Schedule s =
          sched::list_schedule_edf(g, procs, prob.deadline_cycles_at_fmax());
      const NaiveChoice ref = naive_best_level_with_ps(s, prob);
      const core::LevelChoice got = core::best_level_with_ps(s, prob);
      ASSERT_EQ(got.level != nullptr, ref.level != nullptr);
      if (ref.level == nullptr) continue;
      EXPECT_EQ(got.level->index, ref.level->index);
      expect_identical(got.breakdown, ref.breakdown);
      EXPECT_LE(got.levels_evaluated, ref.levels_evaluated);
      if (got.levels_evaluated < ref.levels_evaluated) ++exits_taken;
    }
  }
  // The guard must actually fire somewhere, otherwise it is untested.
  EXPECT_GT(exits_taken, 0u);
}

}  // namespace
}  // namespace lamps
