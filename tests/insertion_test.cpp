// Insertion-based list-scheduler tests: validity, gap filling, and the
// relation to the non-delay scheduler.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "sched/list_scheduler.hpp"
#include "stg/random_gen.hpp"

namespace lamps::sched {
namespace {

using graph::TaskGraph;
using graph::TaskGraphBuilder;

std::vector<std::int64_t> edf_keys(const TaskGraph& g, Cycles deadline) {
  PriorityOptions opts;
  opts.global_deadline_cycles = deadline;
  return make_priority_keys(g, opts);
}

TEST(InsertionScheduler, ValidOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    stg::RandomGraphSpec spec;
    spec.num_tasks = 70;
    spec.method = seed % 2 == 0 ? stg::GenMethod::kLayrProb : stg::GenMethod::kSamePred;
    spec.seed = seed;
    const TaskGraph g = stg::generate_random(spec);
    for (const std::size_t procs : {1u, 3u, 8u}) {
      const Schedule s = list_schedule_insertion(g, procs, edf_keys(g, 10 * g.total_work()));
      EXPECT_EQ(validate_schedule(s, g), "") << seed << "/" << procs;
      EXPECT_GE(s.makespan(), graph::critical_path_length(g));
    }
  }
}

TEST(InsertionScheduler, FillsGapsTheNonDelaySchedulerCannot) {
  // Two chains A(10)->B(1) and C(4)->D(4), plus an urgent-but-late task:
  // construct a graph where a short task fits into an idle gap before an
  // already-placed later task.  The decisive structural property: the
  // insertion scheduler may start a task *before* a previously scheduled
  // higher-priority task on the same processor.
  TaskGraphBuilder b;
  const auto a = b.add_task(10, "A");
  const auto c = b.add_task(2, "C");   // becomes ready immediately
  const auto d = b.add_task(6, "D");   // depends on A: leaves [0,10) idle on its proc
  b.add_edge(a, d);
  (void)c;
  const TaskGraph g = b.build();

  // Priorities: A first, then D, then C (force C to be placed last).
  const std::vector<std::int64_t> keys{0, 9, 1};
  const Schedule s = list_schedule_insertion(g, 2, keys);
  EXPECT_EQ(validate_schedule(s, g), "");
  // C (placed last) must slot into the idle [0, 10) gap on D's processor
  // or an empty processor — either way it starts at 0.
  EXPECT_EQ(s.placement(c).start, 0u);
  EXPECT_EQ(s.makespan(), 16u);
}

TEST(InsertionScheduler, GenuinelyIncomparableWithNonDelay) {
  // The two constructions are incomparable: insertion fills historical
  // gaps but commits strictly in priority order, so a ready low-priority
  // task can be delayed that the non-delay scheduler would have dispatched
  // into a free processor.  Document both directions (measured on this
  // fixed sample: insertion wins some and loses some), and verify the
  // makespans never drop below the critical-path bound.
  std::size_t wins = 0, losses = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    stg::RandomGraphSpec spec;
    spec.num_tasks = 60;
    spec.method = seed % 4 == 0   ? stg::GenMethod::kSameProb
                  : seed % 4 == 1 ? stg::GenMethod::kSamePred
                  : seed % 4 == 2 ? stg::GenMethod::kLayrProb
                                  : stg::GenMethod::kLayrPred;
    spec.num_layers = 12;
    spec.seed = seed;
    const TaskGraph g = stg::generate_random(spec);
    const auto keys = edf_keys(g, 10 * g.total_work());
    const Cycles nondelay = list_schedule(g, 4, keys).makespan();
    const Schedule ins = list_schedule_insertion(g, 4, keys);
    EXPECT_EQ(validate_schedule(ins, g), "") << seed;
    EXPECT_GE(ins.makespan(), graph::critical_path_length(g));
    wins += ins.makespan() < nondelay;
    losses += ins.makespan() > nondelay;
  }
  EXPECT_GE(wins, 1u);
  EXPECT_GE(losses, 1u);
}

TEST(InsertionScheduler, SingleProcessorSerializes) {
  TaskGraphBuilder b;
  for (int i = 0; i < 5; ++i) (void)b.add_task(3);
  const TaskGraph g = b.build();
  const Schedule s = list_schedule_insertion(g, 1, edf_keys(g, 100));
  EXPECT_EQ(s.makespan(), 15u);
  EXPECT_EQ(validate_schedule(s, g), "");
}

TEST(InsertionScheduler, ZeroWeightTasks) {
  TaskGraphBuilder b;
  const auto s0 = b.add_task(0);
  const auto s1 = b.add_task(7);
  b.add_edge(s0, s1);
  const TaskGraph g = b.build();
  const Schedule s = list_schedule_insertion(g, 2, edf_keys(g, 100));
  EXPECT_EQ(validate_schedule(s, g), "");
  EXPECT_EQ(s.makespan(), 7u);
}

TEST(InsertionScheduler, RejectsBadArguments) {
  TaskGraphBuilder b;
  (void)b.add_task(1);
  const TaskGraph g = b.build();
  EXPECT_THROW((void)list_schedule_insertion(g, 0, edf_keys(g, 10)), std::invalid_argument);
  const std::vector<std::int64_t> wrong(3, 0);
  EXPECT_THROW((void)list_schedule_insertion(g, 1, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace lamps::sched
