// Uniprocessor critical-speed DVS tests (Jejurikar et al. [13] setting).
#include <gtest/gtest.h>

#include "apps/uniproc_dvs.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"

namespace lamps::apps {
namespace {

using namespace lamps::unit_literals;

class UniprocFixture : public ::testing::Test {
 protected:
  power::PowerModel model;
  power::DvsLadder ladder{model};

  /// Utilization at f_max roughly `target` spread over three tasks.
  [[nodiscard]] PeriodicTaskSet set_with_utilization(double target) const {
    const double f_max = model.max_frequency().value();
    PeriodicTaskSet ts;
    (void)ts.add_task({"a", static_cast<Cycles>(0.5 * target * 0.010 * f_max), 10.0_ms,
                       Seconds{0}, Seconds{0}});
    (void)ts.add_task({"b", static_cast<Cycles>(0.3 * target * 0.020 * f_max), 20.0_ms,
                       Seconds{0}, Seconds{0}});
    (void)ts.add_task({"c", static_cast<Cycles>(0.2 * target * 0.040 * f_max), 40.0_ms,
                       Seconds{0}, Seconds{0}});
    return ts;
  }
};

TEST_F(UniprocFixture, LowUtilizationRunsAtCriticalSpeed) {
  // Paper/[13]: never slow below the critical speed even if feasibility
  // would allow it.
  const PeriodicTaskSet ts = set_with_utilization(0.10);
  const UniprocDvsResult r = uniproc_critical_speed_dvs(ts, model, ladder);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.level_index, ladder.critical_level().index);
  EXPECT_NEAR(r.density_fmax, 0.10, 0.02);
}

TEST_F(UniprocFixture, HighUtilizationForcesFasterLevel) {
  const PeriodicTaskSet ts = set_with_utilization(0.80);
  const UniprocDvsResult r = uniproc_critical_speed_dvs(ts, model, ladder);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.level_index, ladder.critical_level().index);
  // The level just below the chosen one must be infeasible (density > 1).
  const double density_hz = r.density_fmax * model.max_frequency().value();
  EXPECT_LT(ladder.level(r.level_index - 1).f.value(), density_hz);
  EXPECT_GE(ladder.level(r.level_index).f.value(), density_hz * (1.0 - 1e-9));
}

TEST_F(UniprocFixture, OverloadedSetInfeasible) {
  const PeriodicTaskSet ts = set_with_utilization(1.30);
  const UniprocDvsResult r = uniproc_critical_speed_dvs(ts, model, ladder);
  EXPECT_FALSE(r.feasible);
  EXPECT_GT(r.density_fmax, 1.0);
}

TEST_F(UniprocFixture, PsSleepsTheIdleResidueWhenWorthwhile) {
  // 10% utilization leaves ~36 ms idle per 40 ms hyperperiod — far above
  // the ~3 ms breakeven at the critical level.
  const PeriodicTaskSet ts = set_with_utilization(0.10);
  const UniprocDvsResult with_ps = uniproc_critical_speed_dvs(ts, model, ladder, true);
  const UniprocDvsResult no_ps = uniproc_critical_speed_dvs(ts, model, ladder, false);
  ASSERT_TRUE(with_ps.feasible && no_ps.feasible);
  EXPECT_TRUE(with_ps.sleeps_idle);
  EXPECT_FALSE(no_ps.sleeps_idle);
  EXPECT_LT(with_ps.energy().value(), no_ps.energy().value());
  EXPECT_EQ(with_ps.breakdown.shutdowns, 1u);
}

TEST_F(UniprocFixture, ConstrainedDeadlineRaisesDensity) {
  PeriodicTaskSet implicit;
  (void)implicit.add_task({"t", 30'000'000, 20.0_ms, Seconds{0}, Seconds{0}});
  PeriodicTaskSet constrained;
  (void)constrained.add_task({"t", 30'000'000, 20.0_ms, 10.0_ms, Seconds{0}});
  const auto ri = uniproc_critical_speed_dvs(implicit, model, ladder);
  const auto rc = uniproc_critical_speed_dvs(constrained, model, ladder);
  ASSERT_TRUE(ri.feasible && rc.feasible);
  EXPECT_NEAR(rc.density_fmax, 2.0 * ri.density_fmax, 1e-9);
  EXPECT_GE(rc.level_index, ri.level_index);
}

TEST_F(UniprocFixture, AgreesWithDagPipelineOnSingleProcessor) {
  // The same task set pushed through the frame-based DAG translation and
  // LAMPS (which may also use 1 processor) must land in the same energy
  // regime — the DAG route can only do better or equal since it may use
  // more processors and per-gap (not aggregate) shutdown decisions.
  const PeriodicTaskSet ts = set_with_utilization(0.30);
  const UniprocDvsResult uni = uniproc_critical_speed_dvs(ts, model, ladder);
  ASSERT_TRUE(uni.feasible);

  const graph::TaskGraph g = ts.to_task_graph(1);
  core::Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = ts.hyperperiod();
  const core::StrategyResult dag = core::lamps_schedule_ps(prob);
  ASSERT_TRUE(dag.feasible);
  EXPECT_LE(dag.energy().value(), uni.energy().value() * 1.02);
  EXPECT_GE(dag.energy().value(), uni.energy().value() * 0.5);
}

TEST_F(UniprocFixture, EmptySetRejected) {
  const PeriodicTaskSet ts;
  EXPECT_THROW((void)uniproc_critical_speed_dvs(ts, model, ladder), std::invalid_argument);
}

}  // namespace
}  // namespace lamps::apps
