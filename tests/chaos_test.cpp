// Chaos-hardening tests for the serving plane (util/faultinject +
// util/socket robustness hooks + the net::Server timeout / deadline /
// bounded-queue machinery):
//
//  - fault-spec parsing and the determinism contract of FaultInjector
//    (same seed => same injection schedule)
//  - LineReader under torn input: byte-at-a-time and seeded random splits
//    parse identically; oversize lines surface as a single kOverflow and
//    the stream resynchronizes
//  - server integration: typed too_large / deadline_exceeded errors,
//    idle-connection reaping, mid-line read timeouts, bounded write
//    queues, healthz degradation reporting, the chaosz admin verb, and a
//    chaos-soaked daemon answering every request byte-identically once
//    the client retries
//
// These live in their own binary on purpose: net_test asserts a global-
// registry accounting identity (total == ok + bad + overloaded +
// internal) that too_large / deadline_exceeded outcomes would extend.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/request.hpp"
#include "net/jsonv.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "stg/format.hpp"
#include "stg/random_gen.hpp"
#include "util/errors.hpp"
#include "util/faultinject.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

namespace lamps::net {
namespace {

std::string small_stg(std::size_t seed, std::size_t tasks = 24) {
  stg::RandomGraphSpec spec;
  spec.name = "chaos-test-" + std::to_string(seed);
  spec.num_tasks = tasks;
  spec.seed = seed;
  std::ostringstream os;
  stg::write_stg(stg::generate_random(spec), os);
  return os.str();
}

std::string request_line(const std::string& stg_text, const std::string& strategy,
                         const std::string& id_json, double deadline_ms = 0.0) {
  std::ostringstream os;
  os << "{\"id\":" << id_json << ",\"stg\":";
  write_json_string(os, stg_text);
  os << ",\"strategy\":";
  write_json_string(os, strategy);
  if (deadline_ms > 0.0) os << ",\"deadline_ms\":" << json_double(deadline_ms);
  os << "}\n";
  return os.str();
}

std::uint64_t counter(const char* name) {
  return obs::Registry::global().counter_value(name);
}

// ---------------------------------------------------------------------------
// Fault spec + injector

TEST(FaultSpec, ParsesAndRoundTrips) {
  const FaultSpec spec = parse_fault_spec(
      "seed=42, short_read=0.25,write_reset=0.05,dispatch_delay=0.5,"
      "dispatch_delay_ms=7");
  EXPECT_EQ(spec.seed, 42U);
  EXPECT_DOUBLE_EQ(spec.short_read, 0.25);
  EXPECT_DOUBLE_EQ(spec.write_reset, 0.05);
  EXPECT_DOUBLE_EQ(spec.dispatch_delay, 0.5);
  EXPECT_EQ(spec.dispatch_delay_ms, 7);
  EXPECT_TRUE(spec.any());

  const FaultSpec again = parse_fault_spec(to_string(spec));
  EXPECT_EQ(to_string(again), to_string(spec));

  EXPECT_FALSE(parse_fault_spec("seed=9").any());
  EXPECT_FALSE(FaultSpec{}.any());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_fault_spec("short_read"), InputError);
  EXPECT_THROW((void)parse_fault_spec("bogus_key=0.5"), InputError);
  EXPECT_THROW((void)parse_fault_spec("short_read=1.5"), InputError);
  EXPECT_THROW((void)parse_fault_spec("short_read=-0.1"), InputError);
  EXPECT_THROW((void)parse_fault_spec("accept_stall_ms=-5"), InputError);
  EXPECT_THROW((void)parse_fault_spec("short_read=abc"), InputError);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  const FaultSpec spec = parse_fault_spec("seed=42,short_read=0.3,read_reset=0.1");
  FaultInjector a(spec);
  FaultInjector b(spec);
  for (int i = 0; i < 500; ++i) {
    const FaultInjector::ReadPlan pa = a.plan_read();
    const FaultInjector::ReadPlan pb = b.plan_read();
    EXPECT_EQ(pa.reset, pb.reset) << "draw " << i;
    EXPECT_EQ(pa.max_bytes, pb.max_bytes) << "draw " << i;
  }
  EXPECT_EQ(a.injected_total(), b.injected_total());
  EXPECT_GT(a.injected_total(), 0U);  // p=0.3/0.1 over 500 draws
  EXPECT_EQ(a.decisions(FaultSite::kShortRead), b.decisions(FaultSite::kShortRead));
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a(parse_fault_spec("seed=1,short_read=0.5"));
  FaultInjector b(parse_fault_spec("seed=2,short_read=0.5"));
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    const bool fa = a.plan_read().max_bytes != static_cast<std::size_t>(-1);
    const bool fb = b.plan_read().max_bytes != static_cast<std::size_t>(-1);
    differing += fa != fb ? 1 : 0;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, ProbabilityEndpoints) {
  FaultInjector never(parse_fault_spec("write_reset=0"));
  FaultInjector always(parse_fault_spec("write_reset=1"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.plan_write(64).reset);
    EXPECT_TRUE(always.plan_write(64).reset);
  }
  EXPECT_EQ(never.injected_total(), 0U);
  EXPECT_EQ(always.injected(FaultSite::kWriteReset), 100U);
}

// ---------------------------------------------------------------------------
// LineReader under fragmentation

/// Feeds `payload` through a socketpair in `chunks`-byte pieces and
/// collects everything the reader yields.
std::vector<std::string> read_fragmented(const std::string& payload,
                                         const std::vector<std::size_t>& splits,
                                         std::size_t max_line_bytes = 0) {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread writer([&] {
    std::size_t at = 0;
    for (const std::size_t n : splits) {
      const std::size_t len = std::min(n, payload.size() - at);
      if (len == 0) break;
      EXPECT_EQ(::send(fds[1], payload.data() + at, len, 0),
                static_cast<ssize_t>(len));
      at += len;
    }
    EXPECT_EQ(at, payload.size());
    ::close(fds[1]);
  });
  LineReader reader(fds[0], max_line_bytes);
  std::vector<std::string> lines;
  std::string line;
  for (;;) {
    const LineReader::Status status = reader.read_line(line);
    if (status == LineReader::Status::kLine) {
      lines.push_back(line);
    } else if (status == LineReader::Status::kOverflow) {
      lines.push_back("<overflow>");
    } else {
      break;  // kEof / kError
    }
  }
  writer.join();
  ::close(fds[0]);
  return lines;
}

TEST(LineReaderChaos, ByteAtATimeAndRandomSplitsParseIdentically) {
  const std::string payload = "alpha\n\nbeta line with spaces\n{\"k\":1}\ntail";
  const std::vector<std::string> expected = {"alpha", "", "beta line with spaces",
                                             "{\"k\":1}", "tail"};

  EXPECT_EQ(read_fragmented(payload, {payload.size()}), expected);
  EXPECT_EQ(read_fragmented(payload,
                            std::vector<std::size_t>(payload.size(), 1)),
            expected);
  Rng rng = child_rng(7, 0);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::size_t> splits;
    std::size_t left = payload.size();
    while (left > 0) {
      const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0, 6));
      splits.push_back(std::min(n, left));
      left -= splits.back();
    }
    EXPECT_EQ(read_fragmented(payload, splits), expected) << "round " << round;
  }
}

TEST(LineReaderChaos, OversizeLineOverflowsOnceAndResyncs) {
  const std::string big(300, 'x');
  const std::string payload = big + "\nok\n";
  const std::vector<std::string> expected = {"<overflow>", "ok"};
  // Whole payload in one recv AND trickled byte-at-a-time: same report.
  EXPECT_EQ(read_fragmented(payload, {payload.size()}, 64), expected);
  EXPECT_EQ(read_fragmented(payload, std::vector<std::size_t>(payload.size(), 1), 64),
            expected);
  // An oversize final line without a terminator is also flagged.
  EXPECT_EQ(read_fragmented(big, {big.size()}, 64),
            std::vector<std::string>{"<overflow>"});
}

// ---------------------------------------------------------------------------
// Protocol additions

TEST(ProtocolChaos, DeadlineMsParsesAndValidates) {
  const power::PowerModel model;
  const std::string stg_text = small_stg(11);
  EXPECT_DOUBLE_EQ(
      parse_schedule_request(request_line(stg_text, "LAMPS", "1"), model)
          .deadline_budget_ms,
      0.0);
  EXPECT_DOUBLE_EQ(
      parse_schedule_request(request_line(stg_text, "LAMPS", "1", 250.0), model)
          .deadline_budget_ms,
      250.0);
  std::ostringstream os;
  os << "{\"stg\":";
  write_json_string(os, stg_text);
  os << ",\"deadline_ms\":0}";
  EXPECT_THROW((void)parse_schedule_request(os.str(), model), InputError);
}

TEST(ProtocolChaos, ChaoszIsAnAdminVerb) {
  // Lines reach the parser with the '\n' already stripped by LineReader.
  const auto bare = parse_admin_request("  chaosz \r");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->cmd, AdminCommand::kChaosz);
  const auto json = parse_admin_request("{\"cmd\":\"chaosz\",\"id\":3}");
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ(json->cmd, AdminCommand::kChaosz);
  EXPECT_EQ(json->id_json, "3");
}

// ---------------------------------------------------------------------------
// Server integration

/// One blocking request/response exchange on a fresh connection.
std::string roundtrip(std::uint16_t port, const std::string& line) {
  const Socket sock = connect_tcp(port);
  LineReader reader(sock.fd());
  EXPECT_TRUE(sock.send_all(line));
  std::string response;
  EXPECT_EQ(reader.read_line(response), LineReader::Status::kLine);
  return response;
}

TEST(ServeChaos, OversizeLineGetsTooLargeAndConnectionSurvives) {
  ServerConfig cfg;
  cfg.threads = 2;
  cfg.max_request_bytes = 16384;  // a real request with its STG is ~1-2 KB
  Server server(cfg);
  server.start();

  const std::uint64_t before = counter("serve.requests_too_large");
  const Socket sock = connect_tcp(server.port());
  LineReader reader(sock.fd());
  const std::string oversize = std::string(60000, 'z') + "\n";
  const std::string valid = request_line(small_stg(21), "LAMPS", "\"ok-after\"");
  ASSERT_TRUE(sock.send_all(oversize + valid));

  std::string response;
  ASSERT_EQ(reader.read_line(response), LineReader::Status::kLine);
  EXPECT_NE(response.find("\"error\":\"too_large\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"id\":null"), std::string::npos);
  // Same connection keeps working: the stream resynced at the newline.
  ASSERT_EQ(reader.read_line(response), LineReader::Status::kLine);
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  EXPECT_NE(response.find("\"id\":\"ok-after\""), std::string::npos);
  // ...and other connections are untouched.
  EXPECT_NE(roundtrip(server.port(), request_line(small_stg(22), "S&S", "5"))
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_EQ(counter("serve.requests_too_large"), before + 1);
}

TEST(ServeChaos, DeadlineExceededIsTypedAndCounted) {
  ServerConfig cfg;
  cfg.threads = 2;
  Server server(cfg);
  server.start();

  const std::uint64_t before = counter("serve.requests_deadline_exceeded");
  // A graph big enough that its compute dwarfs a 10 us budget: either the
  // queue check or a mid-compute cancel checkpoint must fire.
  const std::string heavy = small_stg(31, 1200);
  const std::string miss =
      roundtrip(server.port(), request_line(heavy, "LAMPS+PS", "\"tight\"", 0.01));
  EXPECT_NE(miss.find("\"error\":\"deadline_exceeded\""), std::string::npos) << miss;
  EXPECT_NE(miss.find("\"id\":\"tight\""), std::string::npos);
  EXPECT_EQ(counter("serve.requests_deadline_exceeded"), before + 1);

  // A generous budget on a fresh graph sails through.
  const std::string ok = roundtrip(
      server.port(), request_line(small_stg(32), "LAMPS", "\"roomy\"", 60'000.0));
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;
}

TEST(ServeChaos, DefaultDeadlineAppliesWhenRequestOmitsIt) {
  ServerConfig cfg;
  cfg.threads = 2;
  cfg.default_deadline_ms = 0.01;
  Server server(cfg);
  server.start();
  const std::string response = roundtrip(
      server.port(), request_line(small_stg(33, 1200), "LAMPS+PS", "\"srv\""));
  EXPECT_NE(response.find("\"error\":\"deadline_exceeded\""), std::string::npos)
      << response;
}

TEST(ServeChaos, IdleConnectionIsReaped) {
  ServerConfig cfg;
  cfg.threads = 1;
  cfg.idle_timeout_s = 0.05;
  cfg.read_timeout_s = 10.0;
  Server server(cfg);
  server.start();

  const std::uint64_t before = counter("serve.idle_reaped");
  const Socket sock = connect_tcp(server.port());
  LineReader reader(sock.fd());
  std::string line;
  // No bytes sent: the server must hang up on its own.
  EXPECT_EQ(reader.read_line(line), LineReader::Status::kEof);
  EXPECT_EQ(counter("serve.idle_reaped"), before + 1);
}

TEST(ServeChaos, MidLineStallHitsReadTimeout) {
  ServerConfig cfg;
  cfg.threads = 1;
  cfg.read_timeout_s = 0.05;
  cfg.idle_timeout_s = 10.0;
  Server server(cfg);
  server.start();

  const std::uint64_t before = counter("serve.read_timeouts");
  const Socket sock = connect_tcp(server.port());
  ASSERT_TRUE(sock.send_all("{\"id\":1,\"stg\":"));  // never finished
  LineReader reader(sock.fd());
  std::string line;
  EXPECT_EQ(reader.read_line(line), LineReader::Status::kEof);
  EXPECT_EQ(counter("serve.read_timeouts"), before + 1);
}

TEST(ServeChaos, WriteQueueOverflowDisconnectsPipelineFlooder) {
  ServerConfig cfg;
  cfg.threads = 1;
  cfg.max_write_queue = 2;
  cfg.max_pending = 64;  // admission must not shed first
  Server server(cfg);
  server.start();

  const std::uint64_t before = counter("serve.write_queue_overflow");
  const Socket sock = connect_tcp(server.port());
  // Ten distinct heavy requests in one burst: with one worker the deque
  // behind the writer grows past 2 while request #1 still computes.
  std::string burst;
  for (std::size_t i = 0; i < 10; ++i)
    burst += request_line(small_stg(40 + i, 600), "LAMPS+PS",
                          std::to_string(i));
  ASSERT_TRUE(sock.send_all(burst));

  LineReader reader(sock.fd());
  std::string line;
  std::size_t received = 0;
  while (reader.read_line(line) == LineReader::Status::kLine) ++received;
  // Everything admitted was answered, then the flooder was cut off.
  EXPECT_GE(received, 1U);
  EXPECT_LT(received, 10U);
  EXPECT_GE(counter("serve.write_queue_overflow"), before + 1);
}

TEST(ServeChaos, HealthzReportsDegradedThenRecovers) {
  ServerConfig cfg;
  cfg.threads = 1;
  cfg.idle_timeout_s = 0.05;
  Server server(cfg);
  server.start();

  {
    // Provoke one idle reap inside the first healthz window.
    const Socket idle = connect_tcp(server.port());
    LineReader reader(idle.fd());
    std::string line;
    EXPECT_EQ(reader.read_line(line), LineReader::Status::kEof);
  }
  const std::string degraded = roundtrip(server.port(), "healthz\n");
  EXPECT_NE(degraded.find("\"status\":\"degraded\""), std::string::npos) << degraded;
  EXPECT_NE(degraded.find("\"idle_reaped\":1"), std::string::npos) << degraded;
  // The window reset with that scrape; a quiet interval reads healthy.
  const std::string healthy = roundtrip(server.port(), "healthz\n");
  EXPECT_NE(healthy.find("\"status\":\"ok\""), std::string::npos) << healthy;
  EXPECT_NE(healthy.find("\"shed_rate\":"), std::string::npos);
  EXPECT_NE(healthy.find("\"deadline_miss_rate\":"), std::string::npos);
}

TEST(ServeChaos, ChaoszReportsSpecAndCounts) {
  ServerConfig cfg;
  cfg.threads = 1;
  cfg.chaos = std::make_shared<FaultInjector>(
      parse_fault_spec("seed=5,dispatch_delay=1,dispatch_delay_ms=1"));
  Server server(cfg);
  server.start();

  // One computed request must draw (and hit) the dispatch_delay site.
  const std::string ok =
      roundtrip(server.port(), request_line(small_stg(51), "LAMPS", "1"));
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;

  const std::string chaosz = roundtrip(server.port(), "chaosz\n");
  const JsonValue doc = JsonValue::parse(chaosz);
  EXPECT_TRUE(doc.get("enabled")->as_bool());
  EXPECT_EQ(doc.get("seed")->as_number(), 5.0);
  EXPECT_GE(doc.get("injected_total")->as_number(), 1.0);
  const JsonValue* site = doc.get("sites")->get("dispatch_delay");
  ASSERT_NE(site, nullptr);
  EXPECT_GE(site->get_number("injected", 0.0), 1.0);
  EXPECT_GE(site->get_number("decisions", 0.0),
            site->get_number("injected", 0.0));
}

TEST(ServeChaos, ChaoszReportsDisabledWithoutSpec) {
  ServerConfig cfg;
  cfg.threads = 1;
  Server server(cfg);
  server.start();
  const std::string chaosz = roundtrip(server.port(), "chaosz\n");
  EXPECT_NE(chaosz.find("\"enabled\":false"), std::string::npos) << chaosz;
}

TEST(ServeChaos, ChaosSoakedServerAnswersEverythingWithRetries) {
  // Three seeds, three fully distinct fault schedules over the same
  // non-blocking I/O paths (send_some / LineReader::fill / accept / pool
  // dispatch); every seed must converge to 100% eventual success with
  // byte-identical payloads.
  for (const unsigned seed : {3u, 11u, 29u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ServerConfig cfg;
    cfg.threads = 2;
    cfg.chaos = std::make_shared<FaultInjector>(parse_fault_spec(
        "seed=" + std::to_string(seed) +
        ",short_read=0.6,read_reset=0.04,short_write=0.3,torn_write=0.4,"
        "dispatch_delay=0.3,dispatch_delay_ms=2"));
    Server server(cfg);
    server.start();

    const power::PowerModel model;
    const power::DvsLadder ladder(model);
    struct Item {
      std::string line;
      std::string expected;
    };
    std::vector<Item> corpus;
    for (std::size_t i = 0; i < 6; ++i) {
      Item item;
      item.line = request_line(small_stg(60 + i, 32),
                               i % 2 == 0 ? "LAMPS" : "S&S+PS", std::to_string(i));
      const ParsedRequest parsed = parse_schedule_request(item.line, model);
      item.expected =
          result_json(core::run_service_request(parsed.request, model, ladder), ladder);
      corpus.push_back(std::move(item));
    }

    std::optional<Socket> sock;
    std::optional<LineReader> reader;
    std::size_t eventual_ok = 0;
    std::size_t reconnects = 0;
    for (std::size_t i = 0; i < 30; ++i) {
      const Item& item = corpus[i % corpus.size()];
      for (int attempt = 0; attempt < 8; ++attempt) {
        if (!sock.has_value()) {
          sock = try_connect_tcp(server.port(), "127.0.0.1", 2000);
          ASSERT_TRUE(sock.has_value());
          reader.emplace(sock->fd());
          ++reconnects;
        }
        std::string response;
        if (!sock->send_all(item.line) ||
            reader->read_line(response) != LineReader::Status::kLine) {
          sock.reset();  // injected reset: reconnect and retry
          reader.reset();
          continue;
        }
        ASSERT_NE(response.find("\"ok\":true"), std::string::npos) << response;
        // The hard guarantee: chaos may slow or sever, but every success is
        // byte-identical to the direct computation.
        EXPECT_EQ(extract_result_json(response), item.expected);
        ++eventual_ok;
        break;
      }
    }
    EXPECT_EQ(eventual_ok, 30U);
    EXPECT_GT(cfg.chaos->injected_total(), 0U);
    EXPECT_GT(cfg.chaos->decisions(FaultSite::kShortRead), 0U);
  }
}

TEST(ServeChaos, FragmentedRequestParsesIdentically) {
  ServerConfig cfg;
  cfg.threads = 1;
  Server server(cfg);
  server.start();

  const std::string line = request_line(small_stg(71), "LIMIT-SF", "\"frag\"");
  const std::string whole = roundtrip(server.port(), line);
  ASSERT_NE(whole.find("\"ok\":true"), std::string::npos) << whole;

  const Socket sock = connect_tcp(server.port());
  for (std::size_t i = 0; i < line.size(); ++i)
    ASSERT_TRUE(sock.send_all(std::string_view(line.data() + i, 1)));
  LineReader reader(sock.fd());
  std::string response;
  ASSERT_EQ(reader.read_line(response), LineReader::Status::kLine);
  EXPECT_EQ(extract_result_json(response), extract_result_json(whole));
}

}  // namespace
}  // namespace lamps::net
