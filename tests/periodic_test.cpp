// Frame-based periodic-task translation tests (paper section 3.1 /
// Liberato et al. [25]).
#include <gtest/gtest.h>

#include "apps/periodic.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"

namespace lamps::apps {
namespace {

using namespace lamps::unit_literals;

PeriodicTaskSet sample_set() {
  PeriodicTaskSet ts;
  (void)ts.add_task({"sensor", 3'000'000, 10.0_ms, Seconds{0.0}, Seconds{0.0}});
  (void)ts.add_task({"filter", 9'000'000, 20.0_ms, Seconds{0.0}, Seconds{0.0}});
  (void)ts.add_task({"actuate", 2'000'000, 20.0_ms, 15.0_ms, Seconds{0.0}});
  ts.add_dependence(0, 1);  // sensor -> filter (10 ms -> 20 ms, harmonic)
  ts.add_dependence(1, 2);  // filter -> actuate
  return ts;
}

TEST(Periodic, HyperperiodIsLcm) {
  const PeriodicTaskSet ts = sample_set();
  EXPECT_NEAR(ts.hyperperiod().value(), 0.020, 1e-12);

  PeriodicTaskSet odd;
  (void)odd.add_task({"a", 1, 6.0_ms, Seconds{0.0}, Seconds{0.0}});
  (void)odd.add_task({"b", 1, 10.0_ms, Seconds{0.0}, Seconds{0.0}});
  EXPECT_NEAR(odd.hyperperiod().value(), 0.030, 1e-12);
}

TEST(Periodic, UtilizationSum) {
  const PeriodicTaskSet ts = sample_set();
  // At 3 GHz: 3e6/(0.01*3e9) + 9e6/(0.02*3e9) + 2e6/(0.02*3e9)
  EXPECT_NEAR(ts.utilization(Hertz{3e9}), 0.1 + 0.15 + 2.0 / 60.0, 1e-12);
}

TEST(Periodic, UnrollJobCountsAndDeadlines) {
  const PeriodicTaskSet ts = sample_set();
  const graph::TaskGraph g = ts.to_task_graph(2);  // two hyperperiods = 40 ms
  // sensor: 4 jobs, filter: 2, actuate: 2.
  EXPECT_EQ(g.num_tasks(), 4u + 2u + 2u);
  ASSERT_TRUE(g.has_explicit_deadlines());
  // Implicit deadlines: sensor job k due at (k+1)*10 ms.
  EXPECT_EQ(g.label(0), "sensor@0");
  EXPECT_NEAR(g.explicit_deadline(0)->value(), 0.010, 1e-12);
  EXPECT_NEAR(g.explicit_deadline(1)->value(), 0.020, 1e-12);
  // Constrained deadline: actuate due 15 ms after its release.
  const graph::TaskId act0 = 6;
  EXPECT_EQ(g.label(act0), "actuate@0");
  EXPECT_NEAR(g.explicit_deadline(act0)->value(), 0.015, 1e-12);
}

TEST(Periodic, JobChainsAndDependences) {
  const PeriodicTaskSet ts = sample_set();
  const graph::TaskGraph g = ts.to_task_graph(1);
  // Ids: sensor@0=0, sensor@1=1, filter@0=2, actuate@0=3.
  EXPECT_TRUE(graph::has_edge(g, 0, 1));  // job order chain
  EXPECT_TRUE(graph::has_edge(g, 0, 2));  // sensor@0 -> filter@0 (released together)
  EXPECT_FALSE(graph::has_edge(g, 1, 2)); // sensor@1 released after filter@0
  EXPECT_TRUE(graph::has_edge(g, 2, 3));  // filter -> actuate
}

TEST(Periodic, PhaseShiftsReleases) {
  PeriodicTaskSet ts;
  (void)ts.add_task({"a", 1'000'000, 10.0_ms, Seconds{0.0}, 5.0_ms});
  const graph::TaskGraph g = ts.to_task_graph(1);
  ASSERT_EQ(g.num_tasks(), 1u);  // one release in [5 ms, 10 ms)
  EXPECT_NEAR(g.explicit_deadline(0)->value(), 0.015, 1e-12);
}

TEST(Periodic, SchedulableThroughStrategies) {
  const PeriodicTaskSet ts = sample_set();
  const graph::TaskGraph g = ts.to_task_graph(2);
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  core::Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = Seconds{ts.hyperperiod().value() * 2.0};
  for (const core::StrategyKind k : core::kHeuristics) {
    const core::StrategyResult r = core::run_strategy(k, prob);
    ASSERT_TRUE(r.feasible) << core::to_string(k);
    const auto& lvl = ladder.level(r.level_index);
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
      if (const auto d = g.explicit_deadline(v)) {
        EXPECT_LE(static_cast<double>(r.schedule->placement(v).finish) / lvl.f.value(),
                  d->value() * (1.0 + 1e-9))
            << core::to_string(k) << " " << g.label(v);
      }
  }
}

TEST(Periodic, Validation) {
  PeriodicTaskSet ts;
  EXPECT_THROW((void)ts.add_task({"bad", 1, Seconds{0.0}, Seconds{0.0}, Seconds{0.0}}),
               std::invalid_argument);  // zero period
  EXPECT_THROW((void)ts.add_task({"bad", 1, 10.0_ms, 20.0_ms, Seconds{0.0}}),
               std::invalid_argument);  // deadline > period
  EXPECT_THROW((void)ts.add_task({"bad", 1, 10.0_ms, Seconds{0.0}, Seconds{-1.0}}),
               std::invalid_argument);  // negative phase
  EXPECT_THROW((void)ts.add_task({"bad", 1, Seconds{1.23e-7}, Seconds{0.0}, Seconds{0.0}}),
               std::invalid_argument);  // off the 1 us grid

  (void)ts.add_task({"a", 1, 10.0_ms, Seconds{0.0}, Seconds{0.0}});
  (void)ts.add_task({"b", 1, 15.0_ms, Seconds{0.0}, Seconds{0.0}});
  EXPECT_THROW(ts.add_dependence(0, 1), std::invalid_argument);  // 10 vs 15: not harmonic
  EXPECT_THROW(ts.add_dependence(0, 0), std::invalid_argument);
  EXPECT_THROW(ts.add_dependence(0, 7), std::out_of_range);
  EXPECT_THROW((void)ts.to_task_graph(0), std::invalid_argument);
}

TEST(Periodic, EmptySet) {
  const PeriodicTaskSet ts;
  EXPECT_DOUBLE_EQ(ts.hyperperiod().value(), 0.0);
  EXPECT_EQ(ts.to_task_graph(1).num_tasks(), 0u);
}

}  // namespace
}  // namespace lamps::apps
