// Cross-module parameterized sweeps: strategies over the structured graph
// families, heterogeneous mix-search invariants across platform shapes,
// and online-simulation invariants across variability levels.
#include <gtest/gtest.h>

#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "hetero/lamps_hetero.hpp"
#include "sched/schedule.hpp"
#include "sim/online.hpp"
#include "stg/structured.hpp"

namespace lamps {
namespace {

const power::PowerModel& model() {
  static const power::PowerModel m;
  return m;
}
const power::DvsLadder& ladder() {
  static const power::DvsLadder l{model()};
  return l;
}

core::Problem make_problem(const graph::TaskGraph& g, double factor) {
  core::Problem p;
  p.graph = &g;
  p.model = &model();
  p.ladder = &ladder();
  p.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                       model().max_frequency().value() * factor};
  return p;
}

// ------------------------------------------- structured x strategies --

struct StructuredCase {
  const char* name;
  graph::TaskGraph (*make)();
};

graph::TaskGraph make_gauss() {
  return graph::scale_weights(stg::gaussian_elimination(12, 4, 2), 3'100'000);
}
graph::TaskGraph make_fft() {
  return graph::scale_weights(stg::fft_butterfly(4, 3), 3'100'000);
}
graph::TaskGraph make_outtree() {
  return graph::scale_weights(stg::out_tree(6, 2), 3'100'000);
}
graph::TaskGraph make_intree() {
  return graph::scale_weights(stg::in_tree(6, 2), 3'100'000);
}
graph::TaskGraph make_dnc() {
  return graph::scale_weights(stg::divide_and_conquer(5, 1, 6), 3'100'000);
}
graph::TaskGraph make_wave() {
  return graph::scale_weights(stg::wavefront(9, 7, 3), 3'100'000);
}

class StructuredStrategies : public ::testing::TestWithParam<StructuredCase> {};

TEST_P(StructuredStrategies, FullInvariantSuite) {
  const graph::TaskGraph g = GetParam().make();
  for (const double factor : {1.5, 4.0}) {
    const core::Problem prob = make_problem(g, factor);
    const auto sns = core::run_strategy(core::StrategyKind::kSns, prob);
    const auto lam = core::run_strategy(core::StrategyKind::kLamps, prob);
    const auto ps = core::run_strategy(core::StrategyKind::kLampsPs, prob);
    const auto lsf = core::run_strategy(core::StrategyKind::kLimitSf, prob);
    const auto lmf = core::run_strategy(core::StrategyKind::kLimitMf, prob);
    ASSERT_TRUE(sns.feasible && lam.feasible && ps.feasible && lsf.feasible)
        << GetParam().name << " @" << factor;
    EXPECT_EQ(sched::validate_schedule(*sns.schedule, g), "");
    EXPECT_EQ(sched::validate_schedule(*ps.schedule, g), "");
    const double eps = 1.0 + 1e-9;
    EXPECT_LE(lmf.energy().value(), lsf.energy().value() * eps);
    EXPECT_LE(lsf.energy().value(), ps.energy().value() * eps);
    EXPECT_LE(ps.energy().value(), lam.energy().value() * eps);
    EXPECT_LE(lam.energy().value(), sns.energy().value() * eps);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, StructuredStrategies,
                         ::testing::Values(StructuredCase{"gauss", make_gauss},
                                           StructuredCase{"fft", make_fft},
                                           StructuredCase{"outtree", make_outtree},
                                           StructuredCase{"intree", make_intree},
                                           StructuredCase{"dnc", make_dnc},
                                           StructuredCase{"wavefront", make_wave}),
                         [](const auto& pinfo) { return std::string(pinfo.param.name); });

// -------------------------------------------------- hetero invariants --

struct HeteroCase {
  std::size_t bigs;
  std::size_t littles;
  double factor;
};

class HeteroSweep : public ::testing::TestWithParam<HeteroCase> {};

TEST_P(HeteroSweep, MixSearchInvariants) {
  const HeteroCase hc = GetParam();
  const graph::TaskGraph g = make_dnc();
  const hetero::Platform platform = hetero::big_little(hc.bigs, hc.littles);
  const Seconds deadline{static_cast<double>(graph::critical_path_length(g)) /
                         model().max_frequency().value() * hc.factor};
  const hetero::HeteroResult r =
      hetero::lamps_hetero(g, platform, model(), ladder(), deadline);
  if (!r.feasible) {
    // Infeasibility must be justified: even the full platform's capacity
    // cannot retire the total work before the deadline (the fork/join graph
    // has parallelism ~9; tiny platforms at tight deadlines can't carry it).
    double capacity = 0.0;
    for (std::size_t c = 0; c < platform.num_classes(); ++c)
      capacity += static_cast<double>(platform.count_of(c)) * platform.cls(c).speed_factor;
    EXPECT_LT(capacity * deadline.value() * model().max_frequency().value(),
              static_cast<double>(g.total_work()) * 1.3)
        << hc.bigs << "B" << hc.littles << "L @" << hc.factor
        << ": infeasible despite ample capacity";
    return;
  }
  EXPECT_LE(r.completion.value(), deadline.value() * (1.0 + 1e-9));
  ASSERT_EQ(r.counts.size(), platform.num_classes());
  std::size_t employed = 0;
  for (std::size_t c = 0; c < r.counts.size(); ++c) {
    EXPECT_LE(r.counts[c], platform.count_of(c));
    employed += r.counts[c];
  }
  EXPECT_GE(employed, 1u);
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_EQ(hetero::validate_hetero_schedule(*r.schedule, g, platform.subset(r.counts)),
            "");
  // The homogeneous all-big pure configuration is inside the search space,
  // so the mix can never lose to it.
  const hetero::HeteroResult all_big = hetero::lamps_hetero(
      g, platform.subset({hc.bigs, 0}), model(), ladder(), deadline);
  if (all_big.feasible) {
    EXPECT_LE(r.energy().value(), all_big.energy().value() * (1.0 + 1e-12));
  }
}

INSTANTIATE_TEST_SUITE_P(Platforms, HeteroSweep,
                         ::testing::Values(HeteroCase{1, 1, 2.0}, HeteroCase{2, 2, 1.5},
                                           HeteroCase{2, 2, 8.0}, HeteroCase{1, 4, 4.0},
                                           HeteroCase{3, 1, 2.0}),
                         [](const auto& pinfo) {
                           return std::to_string(pinfo.param.bigs) + "B" +
                                  std::to_string(pinfo.param.littles) + "L_d" +
                                  std::to_string(static_cast<int>(pinfo.param.factor * 10));
                         });

// -------------------------------------------------- online invariants --

class OnlineSweep : public ::testing::TestWithParam<double> {};

TEST_P(OnlineSweep, ReclamationNeverIncreasesEnergyAndAlwaysMeetsDeadline) {
  const double ratio = GetParam();
  const graph::TaskGraph g = make_outtree();
  const core::Problem prob = make_problem(g, 1.5);
  const auto plan = core::lamps_schedule_ps(prob);
  ASSERT_TRUE(plan.feasible);
  const auto& lvl = ladder().level(plan.level_index);
  const power::SleepModel sleep(model());

  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    sim::OnlineOptions opts;
    opts.bcet_ratio = ratio;
    opts.seed = seed;
    opts.reclaim = false;
    const auto st = sim::simulate_online(*plan.schedule, g, ladder(), lvl, prob.deadline,
                                         sleep, opts);
    opts.reclaim = true;
    const auto rc = sim::simulate_online(*plan.schedule, g, ladder(), lvl, prob.deadline,
                                         sleep, opts);
    EXPECT_TRUE(st.met_deadline);
    EXPECT_TRUE(rc.met_deadline);
    EXPECT_LE(rc.breakdown.total().value(), st.breakdown.total().value() * (1.0 + 1e-9))
        << "ratio " << ratio << " seed " << seed;
    // Actual execution never exceeds the WCET plan's prediction.
    EXPECT_LE(st.breakdown.total().value(), plan.energy().value() * (1.0 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, OnlineSweep, ::testing::Values(1.0, 0.8, 0.5, 0.25),
                         [](const auto& pinfo) {
                           return "r" + std::to_string(static_cast<int>(pinfo.param * 100));
                         });

}  // namespace
}  // namespace lamps
