#!/usr/bin/env bash
# Run the scheduler micro-benchmarks and store machine-readable results.
#
# Usage: scripts/run_perf_bench.sh [output.json]
#   output.json  destination file (default: results/BENCH_scheduler.json)
#
# Refuses to benchmark a non-Release build: numbers from -O0 binaries are
# meaningless and have polluted committed baselines before.  Note the
# "library_build_type" field google-benchmark writes into the JSON refers
# to the *benchmark library*, not this project — the guard below checks
# the project's own CMAKE_BUILD_TYPE.  Set LAMPS_BENCH_ALLOW_DEBUG=1 to
# override (results are then stamped onto stderr as untrusted), and
# BUILD_DIR to point at a non-default build tree.
#
# The JSON is google-benchmark's --benchmark_out format; see
# docs/performance.md for how to read it and compare against
# results/BENCH_scheduler_baseline.json (the pre-optimization numbers).
# The search benchmarks also report per-iteration observability counters
# (schedule_cache.* hits/misses, search.graham_shortcircuit_*,
# search.probe_*) as google-benchmark user counters, so each entry in the
# JSON carries its cache behaviour next to its timing; the catalog is in
# docs/observability.md.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-results/BENCH_scheduler.json}"
BUILD_DIR="${BUILD_DIR:-build}"

if [[ ! -x "$BUILD_DIR/bench/perf_scheduler" ]]; then
  echo "$BUILD_DIR/bench/perf_scheduler not found — configure and build first:" >&2
  echo "  cmake -B $BUILD_DIR -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)"
if [[ "$BUILD_TYPE" != "Release" && "$BUILD_TYPE" != "RelWithDebInfo" ]]; then
  if [[ "${LAMPS_BENCH_ALLOW_DEBUG:-0}" == "1" ]]; then
    echo "WARNING: benchmarking a '${BUILD_TYPE:-unknown}' build" \
         "(LAMPS_BENCH_ALLOW_DEBUG=1) — do NOT commit these numbers" >&2
  else
    echo "refusing to benchmark a '${BUILD_TYPE:-unknown}' build" \
         "($BUILD_DIR/CMakeCache.txt): reconfigure with" >&2
    echo "  cmake -B $BUILD_DIR -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
    echo "or set LAMPS_BENCH_ALLOW_DEBUG=1 to override." >&2
    exit 2
  fi
fi

mkdir -p "$(dirname "$OUT")"
"$BUILD_DIR/bench/perf_scheduler" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${LAMPS_BENCH_REPS:-1}"

# Record the pre-optimization numbers alongside the fresh ones so one file
# carries both: each benchmark entry gains baseline_real_time and
# speedup_vs_baseline when the baseline knows its name.
if [[ -f results/BENCH_scheduler_baseline.json ]]; then
  python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
cur = json.load(open(out))
base = json.load(open('results/BENCH_scheduler_baseline.json'))
by_name = {b['name']: b for b in base.get('benchmarks', [])}
for b in cur.get('benchmarks', []):
    ref = by_name.get(b['name'])
    if ref and ref.get('time_unit') == b.get('time_unit'):
        b['baseline_real_time'] = ref['real_time']
        if ref['real_time'] > 0 and b['real_time'] > 0:
            b['speedup_vs_baseline'] = round(ref['real_time'] / b['real_time'], 3)
with open(out, 'w') as f:
    json.dump(cur, f, indent=1)
    f.write('\n')
EOF
fi

echo "wrote $OUT"
