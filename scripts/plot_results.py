#!/usr/bin/env python3
"""Plot the paper figures from the bench binaries' CSV output.

The bench binaries print their data series as CSV blocks after a line
containing "CSV:".  This script extracts those blocks and renders the
paper-style figures with matplotlib:

    ./build/bench/fig02_power_curves > fig02.txt
    python3 scripts/plot_results.py fig02 fig02.txt -o fig02.png

Supported figure kinds: fig02, fig03, fig06, fig10, fig11, fig12, fig13,
pareto (output of `lamps pareto`).  Requires matplotlib (not needed for any
C++ build or test).
"""

import argparse
import csv
import io
import sys


def extract_csv(path: str):
    """Returns the rows of the first CSV block in a bench output file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if "CSV:" in text:
        text = text.split("CSV:", 1)[1]
    # The block ends at the first blank line after the header.
    lines = []
    for line in text.lstrip().splitlines():
        if not line.strip():
            break
        lines.append(line)
    return list(csv.DictReader(io.StringIO("\n".join(lines))))


def plot_fig02(rows, ax):
    xs = [float(r["f_norm"]) for r in rows]
    for key, label in [("p_ac", "P_AC"), ("p_dc", "P_DC"), ("p_on", "P_on"),
                       ("p_total", "P_total")]:
        ax.plot(xs, [float(r[key]) for r in rows], label=label)
    ax.set_xlabel("normalized frequency")
    ax.set_ylabel("power [W]")
    ax.legend()


def plot_fig03(rows, ax):
    xs = [float(r["f_norm"]) for r in rows]
    ax.plot(xs, [float(r["breakeven_mcycles"]) for r in rows])
    ax.set_xlabel("normalized frequency")
    ax.set_ylabel("breakeven idle cycles [x1e6]")


def plot_fig06(rows, ax):
    benchmarks = sorted({r["benchmark"] for r in rows})
    for b in benchmarks:
        pts = [(int(r["procs"]), float(r["normalized"]))
               for r in rows
               if r["benchmark"] == b and r["feasible"] == "1"
               and r["deadline_factor"] == "2" and r["normalized"]]
        pts.sort()
        ax.plot([p for p, _ in pts], [e for _, e in pts], marker="o", label=b)
    ax.set_xlabel("# of processors")
    ax.set_ylabel("energy (normalized to minimum)")
    ax.legend()


def plot_fig10(rows, ax):
    # Grouped bars per deadline=1.5 block; one bar group per size group.
    factor = "1.5"
    groups, strategies = [], []
    for r in rows:
        if r["deadline_factor"] != factor:
            continue
        if r["group"] not in groups:
            groups.append(r["group"])
        if r["strategy"] not in strategies:
            strategies.append(r["strategy"])
    width = 1.0 / (len(strategies) + 1)
    for i, s in enumerate(strategies):
        vals = []
        for g in groups:
            v = [float(r["relative_energy"]) for r in rows
                 if r["deadline_factor"] == factor and r["group"] == g
                 and r["strategy"] == s]
            vals.append(100.0 * v[0] if v else 0.0)
        ax.bar([x + i * width for x in range(len(groups))], vals, width, label=s)
    ax.set_xticks([x + width * len(strategies) / 2 for x in range(len(groups))])
    ax.set_xticklabels(groups, rotation=45)
    ax.set_ylabel("energy relative to S&S [%]")
    ax.legend(fontsize=7)


def plot_fig12(rows, ax):
    strategies = sorted({r["strategy"] for r in rows})
    for s in strategies:
        xs = [float(r["parallelism"]) for r in rows if r["strategy"] == s]
        ys = [float(r["energy_per_gigacycle_j"]) for r in rows if r["strategy"] == s]
        ax.scatter(xs, ys, s=8, label=s)
    ax.set_xlabel("average parallelism (W / CPL)")
    ax.set_ylabel("energy per gigacycle [J]")
    ax.legend(fontsize=7)


def plot_pareto(rows, ax):
    xs = [float(r["deadline_factor"]) for r in rows]
    for key in rows[0].keys():
        if not key.endswith("_mj"):
            continue
        ys = [float(r[key]) if r[key] else None for r in rows]
        ax.plot(xs, ys, marker="o", label=key[:-3])
    ax.set_xlabel("deadline factor (x CPL)")
    ax.set_ylabel("energy [mJ]")
    ax.set_xscale("log")
    ax.legend()


PLOTTERS = {
    "fig02": plot_fig02,
    "fig03": plot_fig03,
    "fig06": plot_fig06,
    "fig10": plot_fig10,
    "fig11": plot_fig10,  # same layout, fine grain
    "fig12": plot_fig12,
    "fig13": plot_fig12,
    "pareto": plot_pareto,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("kind", choices=sorted(PLOTTERS))
    parser.add_argument("input", help="bench output file (or raw CSV for pareto)")
    parser.add_argument("-o", "--output", default=None, help="PNG path (default: show)")
    args = parser.parse_args()

    try:
        import matplotlib
        if args.output:
            matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required for plotting", file=sys.stderr)
        return 1

    rows = extract_csv(args.input)
    if not rows:
        print(f"no CSV block found in {args.input}", file=sys.stderr)
        return 1

    fig, ax = plt.subplots(figsize=(7, 4.5))
    PLOTTERS[args.kind](rows, ax)
    ax.set_title(args.kind)
    fig.tight_layout()
    if args.output:
        fig.savefig(args.output, dpi=150)
        print(f"wrote {args.output}")
    else:
        plt.show()
    return 0


if __name__ == "__main__":
    sys.exit(main())
