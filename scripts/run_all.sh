#!/usr/bin/env bash
# Build, test, and regenerate every reproduced table/figure into results/.
#
# Usage: scripts/run_all.sh [--full]
#   --full  use the paper's 180 graphs per random size group (slow)
set -euo pipefail
cd "$(dirname "$0")/.."

FULL_FLAG=""
if [[ "${1:-}" == "--full" ]]; then
  FULL_FLAG="--full"
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/*; do
  name="$(basename "$b")"
  case "$name" in
    perf_scheduler)
      echo "== $name =="
      "$b" | tee "results/$name.txt"
      ;;
    fig1*|fig12*|fig13*|ext_multifreq|ablation_priorities)
      echo "== $name $FULL_FLAG =="
      "$b" $FULL_FLAG | tee "results/$name.txt"
      ;;
    *)
      echo "== $name =="
      "$b" | tee "results/$name.txt"
      ;;
  esac
done

echo
echo "All outputs are under results/.  Plot with e.g.:"
echo "  python3 scripts/plot_results.py fig10 results/fig10_coarse_grain.txt -o fig10.png"
