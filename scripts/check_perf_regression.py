#!/usr/bin/env python3
"""Gate scheduler benchmark results against the committed Release baseline.

Usage: scripts/check_perf_regression.py CURRENT.json [BASELINE.json]
                                        [--tolerance FRAC]

Both files are google-benchmark --benchmark_out JSON.  A raw wall-time
comparison would be meaningless across machines (the committed baseline
and a CI runner differ in clock speed), so the gate is *normalized*: for
every benchmark present in both files it computes the ratio
current/baseline, takes the median ratio as the machine-speed factor, and
flags any benchmark whose ratio exceeds the median by more than
--tolerance (default 0.50).  A benchmark that regressed uniformly with
the rest of the suite therefore still fails — the median moves with it —
while one that merely ran on a slower machine does not.

Exit codes: 0 ok, 1 regression detected, 2 usage/input error.
"""

import argparse
import json
import statistics
import sys


def load_benchmarks(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_perf_regression: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for b in data.get("benchmarks", []):
        # aggregate rows (mean/median/stddev from --benchmark_repetitions)
        # would double-count; keep only plain iteration rows.
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline", nargs="?", default="results/BENCH_scheduler_baseline.json")
    ap.add_argument("--tolerance", type=float, default=0.50,
                    help="allowed fractional slowdown beyond the median ratio")
    args = ap.parse_args()

    cur = load_benchmarks(args.current)
    base = load_benchmarks(args.baseline)

    common = [n for n in cur if n in base and cur[n][1] == base[n][1]
              and base[n][0] > 0 and cur[n][0] > 0]
    if len(common) < 3:
        print(f"check_perf_regression: only {len(common)} comparable benchmarks — "
              "refusing to gate on that little signal", file=sys.stderr)
        sys.exit(2)

    ratios = {n: cur[n][0] / base[n][0] for n in common}
    speed = statistics.median(ratios.values())
    limit = speed * (1.0 + args.tolerance)

    print(f"machine-speed factor (median current/baseline ratio): {speed:.3f}")
    print(f"per-benchmark limit: {limit:.3f}x baseline "
          f"(median + {args.tolerance:.0%} tolerance)\n")
    print(f"{'benchmark':55s} {'ratio':>8s}  verdict")

    failed = []
    for n in sorted(common, key=lambda n: -ratios[n]):
        verdict = "REGRESSED" if ratios[n] > limit else "ok"
        if verdict == "REGRESSED":
            failed.append(n)
        print(f"{n:55s} {ratios[n]:8.3f}  {verdict}")

    new = sorted(set(cur) - set(base))
    if new:
        print(f"\nnot in baseline (skipped): {', '.join(new)}")
    gone = sorted(set(base) - set(cur))
    if gone:
        print(f"missing from current run: {', '.join(gone)}", file=sys.stderr)

    if failed:
        print(f"\n{len(failed)} benchmark(s) regressed beyond tolerance: "
              + ", ".join(failed), file=sys.stderr)
        sys.exit(1)
    print("\nno regressions beyond tolerance")


if __name__ == "__main__":
    main()
