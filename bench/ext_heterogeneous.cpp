// Extension experiment: leakage-aware scheduling on a heterogeneous
// (big.LITTLE) platform — the generalization studied by the paper's
// related work [23] (Yan, Luo & Jha).
//
// For each deadline factor, compares on a fixed coarse-grain sample:
//   * homogeneous LAMPS+PS on the big cores only (the paper's setting),
//   * the heterogeneous mix search over big + little cores,
// reporting mean energy relative to the all-big S&S baseline and which mix
// the search picks.  Expectation: tight deadlines need the big cores;
// as the deadline loosens the optimal mix migrates to the little cores and
// the heterogeneous saving widens.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "hetero/lamps_hetero.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::size_t graphs = 8;
  std::size_t tasks = 120;
  std::size_t bigs = 4;
  std::size_t littles = 4;
  CliParser cli("Extension — big.LITTLE platform vs homogeneous LAMPS+PS");
  cli.add_option("graphs", "number of random graphs", &graphs);
  cli.add_option("tasks", "tasks per graph", &tasks);
  cli.add_option("bigs", "number of big cores", &bigs);
  cli.add_option("littles", "number of little cores", &littles);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const hetero::Platform platform = hetero::big_little(bigs, littles);

  std::cout << "big.LITTLE mix search: " << bigs << " big + " << littles
            << " little (0.45x speed, 0.18x power), " << graphs << " graphs of " << tasks
            << " tasks, coarse grain\n";
  std::cout << "CSV:\ndeadline_factor,homog_lamps_ps_rel,hetero_rel,mean_bigs,"
               "mean_littles,graphs\n";
  CsvWriter csv(std::cout);
  TextTable table({"deadline", "LAMPS+PS (bigs only)", "hetero mix", "avg bigs",
                   "avg littles"});

  for (const double factor : {1.2, 1.5, 2.0, 4.0, 8.0}) {
    double homog_sum = 0.0, hetero_sum = 0.0, big_sum = 0.0, little_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < graphs; ++i) {
      const auto specs = stg::random_group_specs(tasks, i + 1);
      const graph::TaskGraph g = graph::scale_weights(
          stg::generate_random(specs[i]), stg::kCoarseGrainCyclesPerUnit);
      const Seconds deadline{static_cast<double>(graph::critical_path_length(g)) /
                             model.max_frequency().value() * factor};

      core::Problem prob;
      prob.graph = &g;
      prob.model = &model;
      prob.ladder = &ladder;
      prob.deadline = deadline;
      const auto sns = core::run_strategy(core::StrategyKind::kSns, prob);
      const auto ps = core::run_strategy(core::StrategyKind::kLampsPs, prob);
      const auto het = hetero::lamps_hetero(g, platform, model, ladder, deadline);
      if (!sns.feasible || !ps.feasible || !het.feasible) continue;
      homog_sum += ps.energy().value() / sns.energy().value();
      hetero_sum += het.energy().value() / sns.energy().value();
      big_sum += static_cast<double>(het.counts[0]);
      little_sum += static_cast<double>(het.counts[1]);
      ++n;
    }
    if (n == 0) continue;
    const double dn = static_cast<double>(n);
    table.row(fmt_fixed(factor, 1) + "x", fmt_percent(homog_sum / dn),
              fmt_percent(hetero_sum / dn), fmt_fixed(big_sum / dn, 1),
              fmt_fixed(little_sum / dn, 1));
    csv.row(factor, fmt_fixed(homog_sum / dn, 4), fmt_fixed(hetero_sum / dn, 4),
            fmt_fixed(big_sum / dn, 2), fmt_fixed(little_sum / dn, 2), n);
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "(100% = homogeneous S&S on the big cores.  The mix column shows the\n"
               " employed cores migrating from big to little as the deadline loosens.)\n";
  return 0;
}
