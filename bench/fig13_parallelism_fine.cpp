// Reproduces paper Fig 13: energy / total work vs average parallelism for
// fine-grain tasks (deadline 2 x CPL).  Unlike the coarse-grain case, the
// idle periods here are mostly below the shutdown breakeven, so S&S+PS
// degrades toward S&S while LAMPS(+PS) stays flat.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace lamps;
  bench::CommonOptions opts;
  CliParser cli("Fig 13 — energy/work vs parallelism, fine-grain tasks");
  opts.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;
  bench::run_parallelism_figure("Fig 13 (fine grain)", stg::kFineGrainCyclesPerUnit, opts,
                                std::cout);
  return 0;
}
