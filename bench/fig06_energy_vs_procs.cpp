// Reproduces paper Fig 6: normalized energy consumption as a function of
// the number of employed processors for the fpppp / robot / sparse
// application graphs (coarse grain).  The paper's caption says the deadline
// is 2 x CPL while the body text says 1.5 x; both are emitted.
//
// The point of the figure: the curve has local minima, which is why LAMPS
// phase 2 performs a full (not binary) search over the processor count.
#include <iostream>

#include "bench_common.hpp"
#include "core/lamps.hpp"
#include "graph/analysis.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::size_t max_procs = 20;
  CliParser cli("Fig 6 — normalized energy vs number of processors");
  cli.add_option("max-procs", "largest processor count to sweep", &max_procs);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);

  std::cout << "Fig 6 — energy vs processor count (normalized to each curve's minimum)\n";
  std::cout << "CSV:\nbenchmark,deadline_factor,procs,feasible,energy_j,normalized,level\n";
  CsvWriter csv(std::cout);

  for (const double factor : {2.0, 1.5}) {
    std::cout << "\n-- deadline = " << factor << " x CPL --\n";
    for (const auto& app : stg::application_graphs()) {
      const graph::TaskGraph g =
          graph::scale_weights(app, stg::kCoarseGrainCyclesPerUnit);
      core::Problem prob;
      prob.graph = &g;
      prob.model = &model;
      prob.ladder = &ladder;
      prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                              model.max_frequency().value() * factor};

      const auto sweep = core::processor_sweep(prob, max_procs, /*with_ps=*/false);
      double best = 0.0;
      for (const auto& pt : sweep)
        if (pt.feasible && (best == 0.0 || pt.energy.value() < best))
          best = pt.energy.value();

      TextTable table({"procs", "feasible", "energy [J]", "normalized"});
      std::size_t local_minima = 0;
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto& pt = sweep[i];
        const double norm = pt.feasible && best > 0.0 ? pt.energy.value() / best : 0.0;
        table.row(pt.num_procs, pt.feasible ? "yes" : "no",
                  pt.feasible ? fmt_fixed(pt.energy.value(), 4) : "-",
                  pt.feasible ? fmt_fixed(norm, 3) : "-");
        csv.row(app.name(), factor, pt.num_procs, pt.feasible ? 1 : 0,
                pt.feasible ? fmt_fixed(pt.energy.value(), 6) : "",
                pt.feasible ? fmt_fixed(norm, 4) : "", pt.level_index);
        if (i > 0 && i + 1 < sweep.size() && pt.feasible && sweep[i - 1].feasible &&
            sweep[i + 1].feasible && pt.energy.value() < sweep[i - 1].energy.value() &&
            pt.energy.value() < sweep[i + 1].energy.value())
          ++local_minima;
      }
      std::cout << "\n" << app.name() << " (deadline " << factor << " x CPL, "
                << local_minima << " interior local minima):\n";
      table.print(std::cout);
    }
  }
  return 0;
}
