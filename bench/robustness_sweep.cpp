// Robustness sweep: deadline-miss rate and energy inflation vs
// execution-time jitter, per strategy, over a random STG suite.
//
// The paper's figures rank the strategies under WCET-exact execution; this
// sweep asks how the ranking degrades when execution times jitter around
// WCET and wakeups occasionally misbehave.  For each (jitter, strategy)
// cell we Monte-Carlo-replay every graph's schedule and report the means
// over the suite: miss rate, energy relative to the strategy's own nominal
// prediction (mean/p95/p99), shutdowns, wake faults, and wall-clock cost.
#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "robust/montecarlo.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/summary.hpp"

namespace {

using namespace lamps;

struct Cell {
  std::vector<double> miss, mean_rel, p95_rel, p99_rel, shutdowns, faults;
  double seconds{0.0};
};

}  // namespace

int main(int argc, char** argv) {
  bench::CommonOptions opts;
  opts.graphs_per_group = 6;
  std::size_t trials = 200;
  double factor = 2.0;
  // Off by default so the zero-jitter column is the exact nominal anchor.
  double wake_fault_prob = 0.0;
  CliParser cli(
      "Monte-Carlo robustness vs execution-time jitter, per strategy, on the "
      "random STG suite");
  opts.register_flags(cli);
  cli.add_option("trials", "Monte-Carlo trials per (graph, strategy, jitter)", &trials);
  cli.add_option("deadline-factor", "deadline as a multiple of the CPL", &factor);
  cli.add_option("wake-fault-prob", "probability a wakeup misbehaves", &wake_fault_prob);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const power::SleepModel sleep(model);
  const std::vector<double> jitters{0.0, 0.05, 0.1, 0.2, 0.4};
  const std::vector<core::SuiteEntry> entries = bench::make_random_suite(
      {50, 100}, opts.effective_graphs(), stg::kCoarseGrainCyclesPerUnit, opts.seed);

  std::map<std::pair<double, core::StrategyKind>, Cell> cells;
  for (std::size_t gi = 0; gi < entries.size(); ++gi) {
    const core::SuiteEntry& e = entries[gi];
    core::Problem prob;
    prob.graph = &e.graph;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(e.graph)) /
                            model.max_frequency().value() * factor};
    for (const core::StrategyKind kind : core::kHeuristics) {
      const core::StrategyResult plan = core::run_strategy(kind, prob);
      if (!plan.feasible || !plan.schedule.has_value()) continue;
      const bool ps = kind == core::StrategyKind::kSnsPs ||
                      kind == core::StrategyKind::kLampsPs;
      const energy::PsOptions ps_opts =
          ps ? energy::PsOptions{true, prob.ps_allow_leading_gaps} : energy::PsOptions{};
      const double nominal = plan.breakdown.total().value();
      for (std::size_t ji = 0; ji < jitters.size(); ++ji) {
        robust::McConfig cfg;
        cfg.trials = trials;
        // Every (graph, jitter) cell draws from its own child stream so the
        // cells stay independent and the run is reproducible at any thread
        // count.
        cfg.seed = child_seed(opts.seed, gi * jitters.size() + ji);
        cfg.threads = opts.threads;
        cfg.perturb.jitter = jitters[ji];
        cfg.perturb.wake_fault_prob = wake_fault_prob;
        const Stopwatch watch;
        const robust::RobustnessStats stats = robust::run_montecarlo(
            *plan.schedule, e.graph, ladder.level(plan.level_index), prob.deadline, sleep,
            ps_opts, cfg);
        Cell& cell = cells[{jitters[ji], kind}];
        cell.miss.push_back(stats.miss_rate);
        cell.mean_rel.push_back(stats.energy.mean / nominal);
        cell.p95_rel.push_back(stats.energy_p95 / nominal);
        cell.p99_rel.push_back(stats.energy_p99 / nominal);
        cell.shutdowns.push_back(stats.mean_shutdowns);
        cell.faults.push_back(stats.mean_wake_faults);
        cell.seconds += watch.elapsed_seconds();
      }
    }
  }

  std::cout << "robustness sweep — " << entries.size() << " graphs, " << trials
            << " trials each, deadline " << factor << " x CPL, wake faults "
            << fmt_percent(wake_fault_prob, 1) << "\n\n";
  const auto mean_of = [](const std::vector<double>& xs) {
    return xs.empty() ? 0.0 : summarize(xs).mean;
  };
  TextTable table({"jitter", "strategy", "miss", "mean vs nominal", "p95", "p99"});
  std::cout << "CSV:\njitter,strategy,graphs,miss_rate,mean_rel,p95_rel,p99_rel,"
               "mean_shutdowns,mean_wake_faults,seconds\n";
  CsvWriter csv(std::cout);
  for (std::size_t ji = 0; ji < jitters.size(); ++ji) {
    const double j = jitters[ji];
    if (ji > 0) table.separator();
    for (const core::StrategyKind kind : core::kHeuristics) {
      const auto it = cells.find({j, kind});
      if (it == cells.end()) continue;
      const Cell& c = it->second;
      table.row(fmt_percent(j, 0), core::to_string(kind), fmt_percent(mean_of(c.miss), 1),
                fmt_percent(mean_of(c.mean_rel), 1), fmt_percent(mean_of(c.p95_rel), 1),
                fmt_percent(mean_of(c.p99_rel), 1));
      csv.row(j, core::to_string(kind), c.miss.size(), fmt_fixed(mean_of(c.miss), 6),
              fmt_fixed(mean_of(c.mean_rel), 6), fmt_fixed(mean_of(c.p95_rel), 6),
              fmt_fixed(mean_of(c.p99_rel), 6), fmt_fixed(mean_of(c.shutdowns), 3),
              fmt_fixed(mean_of(c.faults), 3), fmt_fixed(c.seconds, 3));
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "(zero jitter reproduces each strategy's nominal energy exactly; the "
               "spread above it is what static evaluation cannot see.)\n";
  return 0;
}
