// Extension experiment (paper section 6, future work): how much of the
// LIMIT-MF headroom do per-task frequencies actually recover?
//
// The paper conjectures that the "actual benefit from having multiple
// frequencies will probably be much less" than the LIMIT-MF bound
// suggests, especially for coarse-grain graphs and loose deadlines.  This
// bench puts a number on it: for every (group, deadline) it reports the
// mean energy of LAMPS+PS (single frequency) and LAMPS+MF (per-task slack
// reclamation) relative to S&S, next to the LIMIT-SF and LIMIT-MF bounds.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/multifreq.hpp"
#include "graph/analysis.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  bench::CommonOptions opts;
  CliParser cli("Extension — per-task DVS (LAMPS+MF) vs the LIMIT-MF bound");
  opts.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const std::vector<double> factors{1.5, 2.0, 4.0, 8.0};

  std::cout << "CSV:\ngranularity,group,deadline_factor,lamps_ps_rel,lamps_mf_rel,"
               "limit_sf_rel,limit_mf_rel,graphs\n";
  CsvWriter csv(std::cout);

  for (const bool fine : {false, true}) {
    const Cycles unit = fine ? stg::kFineGrainCyclesPerUnit : stg::kCoarseGrainCyclesPerUnit;
    std::vector<core::SuiteEntry> entries =
        bench::make_random_suite({100, 500, 1000}, opts.effective_graphs(), unit, opts.seed);
    bench::append_application_graphs(entries, unit);

    std::cout << "\n=== " << (fine ? "fine" : "coarse") << " grain ===\n";
    TextTable table({"group", "deadline", "LAMPS+PS", "LAMPS+MF", "LIMIT-SF", "LIMIT-MF"});

    std::map<std::string, std::vector<const core::SuiteEntry*>> groups;
    std::vector<std::string> group_order;
    for (const auto& e : entries) {
      if (groups.find(e.group) == groups.end()) group_order.push_back(e.group);
      groups[e.group].push_back(&e);
    }

    for (const std::string& group : group_order) {
      for (const double factor : factors) {
        double ps_sum = 0, mf_sum = 0, lsf_sum = 0, lmf_sum = 0;
        std::size_t n = 0;
        for (const core::SuiteEntry* e : groups[group]) {
          core::Problem prob;
          prob.graph = &e->graph;
          prob.model = &model;
          prob.ladder = &ladder;
          prob.deadline =
              Seconds{static_cast<double>(graph::critical_path_length(e->graph)) /
                      model.max_frequency().value() * factor};
          const auto sns = core::schedule_and_stretch(prob);
          if (!sns.feasible) continue;
          const auto ps = core::lamps_schedule_ps(prob);
          const auto mf = core::lamps_multifreq(prob);
          const auto lsf = core::limit_sf(prob);
          const auto lmf = core::limit_mf(prob);
          if (!ps.feasible || !mf.feasible || !lsf.feasible) continue;
          const double base = sns.energy().value();
          ps_sum += ps.energy().value() / base;
          mf_sum += mf.energy().value() / base;
          lsf_sum += lsf.energy().value() / base;
          lmf_sum += lmf.energy().value() / base;
          ++n;
        }
        if (n == 0) continue;
        const double dn = static_cast<double>(n);
        table.row(group, fmt_fixed(factor, 1) + "x", fmt_percent(ps_sum / dn),
                  fmt_percent(mf_sum / dn), fmt_percent(lsf_sum / dn),
                  fmt_percent(lmf_sum / dn));
        csv.row(fine ? "fine" : "coarse", group, factor, fmt_fixed(ps_sum / dn, 4),
                fmt_fixed(mf_sum / dn, 4), fmt_fixed(lsf_sum / dn, 4),
                fmt_fixed(lmf_sum / dn, 4), n);
      }
    }
    table.print(std::cout);
  }
  std::cout << "\nReading: LAMPS+MF below LAMPS+PS = per-task DVS helps; the distance\n"
               "between LAMPS+MF and LIMIT-MF is the part of the bound that is\n"
               "unreachable once deadlines and real schedules are respected.\n";
  return 0;
}
