// Extension experiment: the paper's motivation, quantified.
//
// Section 1 argues that with each technology generation the leakage
// current grows ~5x, so "schedule on everything and stretch" (S&S) loses
// to leakage-aware processor-count selection more and more.  This bench
// projects the 70 nm model forward (leakage x5 per generation, Ceff x0.7)
// and reports, per node, the critical speed, the static share of the
// power at f_max, and the LAMPS+PS saving over S&S on a fixed graph
// sample — the saving should grow with the static share.
#include <iostream>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "power/sleep_model.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::size_t graphs = 8;
  std::size_t tasks = 200;
  std::size_t max_generations = 3;
  CliParser cli("Extension — technology scaling: leakage x5 per generation");
  cli.add_option("graphs", "number of random graphs", &graphs);
  cli.add_option("tasks", "tasks per graph", &tasks);
  cli.add_option("generations", "how many generations past 70 nm", &max_generations);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  std::cout << "Technology scaling, " << graphs << " graphs of " << tasks
            << " tasks, deadline 2 x CPL, coarse grain\n";
  std::cout << "CSV:\ngeneration,static_share_at_fmax,crit_f_norm,lamps_ps_vs_sns,"
               "limit_sf_vs_sns\n";
  CsvWriter csv(std::cout);
  TextTable table({"node", "static share @fmax", "crit f/f_max", "LAMPS+PS vs S&S",
                   "LIMIT-SF vs S&S"});

  for (unsigned gen = 0; gen <= max_generations; ++gen) {
    const power::PowerModel model(power::technology_scaled(gen));
    const power::DvsLadder ladder(model);
    const auto& top = ladder.max_level();
    const double static_share =
        (top.active.leakage + top.active.intrinsic) / top.active.total();

    double ps_sum = 0.0, lsf_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < graphs; ++i) {
      const auto specs = stg::random_group_specs(tasks, i + 1);
      const graph::TaskGraph g = graph::scale_weights(
          stg::generate_random(specs[i]), stg::kCoarseGrainCyclesPerUnit);
      core::Problem prob;
      prob.graph = &g;
      prob.model = &model;
      prob.ladder = &ladder;
      prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                              model.max_frequency().value() * 2.0};
      const auto sns = core::run_strategy(core::StrategyKind::kSns, prob);
      const auto ps = core::run_strategy(core::StrategyKind::kLampsPs, prob);
      const auto lsf = core::run_strategy(core::StrategyKind::kLimitSf, prob);
      if (!sns.feasible || !ps.feasible || !lsf.feasible) continue;
      ps_sum += ps.energy().value() / sns.energy().value();
      lsf_sum += lsf.energy().value() / sns.energy().value();
      ++n;
    }
    if (n == 0) continue;
    const double dn = static_cast<double>(n);
    const std::string node = gen == 0 ? "70 nm (paper)"
                                      : std::to_string(gen) + " gen past 70 nm";
    table.row(node, fmt_percent(static_share), fmt_fixed(ladder.critical_level().f_norm, 3),
              fmt_percent(ps_sum / dn), fmt_percent(lsf_sum / dn));
    csv.row(gen, fmt_fixed(static_share, 4), fmt_fixed(ladder.critical_level().f_norm, 4),
            fmt_fixed(ps_sum / dn, 4), fmt_fixed(lsf_sum / dn, 4));
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "(As leakage dominates, the critical speed rises and the saving of\n"
               " leakage-aware scheduling over S&S grows — the paper's section 1 argument.)\n";
  return 0;
}
