// Ablation: how graph *shape* drives the DVS/PS/processor-count trade-off.
//
// The paper's Figs 12/13 show the average parallelism is the dominant
// driver.  The structured families let us separate shape effects at fixed
// parallelism flavor: constant-width graphs (FFT), narrowing fronts
// (Gaussian elimination), widening/contracting trees (out/in, fork-join),
// and wavefronts.  For each family and deadline the bench reports the
// parallelism, the processor counts S&S vs LAMPS choose, and the relative
// energies.
#include <iostream>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "stg/structured.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  CliParser cli("Ablation — structured graph families vs the strategies");
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);

  struct Family {
    const char* name;
    graph::TaskGraph graph;
  };
  std::vector<Family> families;
  families.push_back({"gauss(16)", stg::gaussian_elimination(16, 4, 2)});
  families.push_back({"fft(2^5)", stg::fft_butterfly(5, 3)});
  families.push_back({"out-tree(7)", stg::out_tree(7, 2)});
  families.push_back({"in-tree(7)", stg::in_tree(7, 2)});
  families.push_back({"fork-join(6)", stg::divide_and_conquer(6, 1, 6)});
  families.push_back({"wavefront(12x12)", stg::wavefront(12, 12, 3)});

  std::cout << "Structured-family ablation (coarse grain)\n";
  std::cout << "CSV:\nfamily,parallelism,deadline_factor,sns_procs,lamps_procs,"
               "lamps_rel,lamps_ps_rel,limit_sf_rel\n";
  CsvWriter csv(std::cout);
  TextTable table({"family", "par", "deadline", "S&S procs", "LAMPS procs", "LAMPS",
                   "LAMPS+PS", "LIMIT-SF"});

  for (const Family& fam : families) {
    const graph::TaskGraph g =
        graph::scale_weights(fam.graph, stg::kCoarseGrainCyclesPerUnit);
    const double par = graph::average_parallelism(g);
    for (const double factor : {1.5, 4.0}) {
      core::Problem prob;
      prob.graph = &g;
      prob.model = &model;
      prob.ladder = &ladder;
      prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                              model.max_frequency().value() * factor};
      const auto sns = core::run_strategy(core::StrategyKind::kSns, prob);
      const auto lam = core::run_strategy(core::StrategyKind::kLamps, prob);
      const auto ps = core::run_strategy(core::StrategyKind::kLampsPs, prob);
      const auto lsf = core::run_strategy(core::StrategyKind::kLimitSf, prob);
      if (!sns.feasible || !lam.feasible || !ps.feasible || !lsf.feasible) continue;
      const double base = sns.energy().value();
      table.row(fam.name, fmt_fixed(par, 1), fmt_fixed(factor, 1) + "x", sns.num_procs,
                lam.num_procs, fmt_percent(lam.energy().value() / base),
                fmt_percent(ps.energy().value() / base),
                fmt_percent(lsf.energy().value() / base));
      csv.row(fam.name, fmt_fixed(par, 3), factor, sns.num_procs, lam.num_procs,
              fmt_fixed(lam.energy().value() / base, 4),
              fmt_fixed(ps.energy().value() / base, 4),
              fmt_fixed(lsf.energy().value() / base, 4));
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "(Width-varying families — trees, elimination fronts — leave the most\n"
               " idle time on S&S's many processors, so LAMPS's count selection and\n"
               " PS recover the most there; constant-width FFT leaves the least.)\n";
  return 0;
}
