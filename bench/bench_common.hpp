// Shared plumbing for the table/figure reproduction binaries: suite
// construction, CSV/table emission, and the standard CLI options.
#pragma once

#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "graph/transform.hpp"
#include "stg/suite.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace lamps::bench {

struct CommonOptions {
  /// Graphs per random size group.  The paper's full configuration is 180;
  /// the default keeps a full bench run in tens of seconds on one core.
  std::size_t graphs_per_group{12};
  std::uint64_t seed{0x57a6};
  std::size_t threads{0};
  bool full{false};  ///< shorthand for graphs_per_group = 180

  void register_flags(CliParser& cli) {
    cli.add_option("graphs", "random graphs per size group", &graphs_per_group);
    cli.add_option("seed", "master seed for the generated suite", &seed);
    cli.add_option("threads", "worker threads (0 = all cores)", &threads);
    cli.add_flag("full", "use the paper's full 180 graphs per group", &full);
  }

  [[nodiscard]] std::size_t effective_graphs() const {
    return full ? 180 : graphs_per_group;
  }
};

/// Builds the random groups (scaled to cycles) for the given sizes.
inline std::vector<core::SuiteEntry> make_random_suite(
    const std::vector<std::size_t>& sizes, std::size_t per_group, Cycles cycles_per_unit,
    std::uint64_t seed) {
  std::vector<core::SuiteEntry> entries;
  for (const std::size_t size : sizes) {
    for (auto& g : stg::make_random_group(size, per_group, seed)) {
      entries.push_back(core::SuiteEntry{std::to_string(size),
                                         graph::scale_weights(g, cycles_per_unit)});
    }
  }
  return entries;
}

/// Appends the three application graphs (fpppp/robot/sparse), scaled.
inline void append_application_graphs(std::vector<core::SuiteEntry>& entries,
                                      Cycles cycles_per_unit) {
  for (auto& g : stg::application_graphs()) {
    const std::string group = g.name();
    entries.push_back(core::SuiteEntry{group, graph::scale_weights(g, cycles_per_unit)});
  }
}

/// Emits the Figs 10/11-style output: one table per deadline factor with a
/// row per group and a column per strategy (mean energy relative to S&S),
/// followed by the full CSV.
inline void print_relative_energy_report(const std::vector<core::GroupRelative>& agg,
                                         const std::vector<std::string>& group_order,
                                         const std::vector<double>& factors,
                                         std::ostream& os) {
  const auto find = [&](const std::string& group, double factor,
                        core::StrategyKind k) -> const core::GroupRelative* {
    for (const auto& g : agg)
      if (g.group == group && g.deadline_factor == factor && g.strategy == k) return &g;
    return nullptr;
  };

  for (const double factor : factors) {
    os << "\nDeadline = " << factor << " x CPL (energy relative to S&S)\n";
    std::vector<std::string> headers{"group"};
    for (const core::StrategyKind k : core::kAllStrategies)
      headers.emplace_back(core::to_string(k));
    TextTable table(std::move(headers));
    for (const std::string& group : group_order) {
      std::vector<std::string> row{group};
      for (const core::StrategyKind k : core::kAllStrategies) {
        const auto* g = find(group, factor, k);
        row.push_back(g != nullptr && g->num_graphs > 0
                          ? fmt_percent(g->mean_relative_energy)
                          : "n/a");
      }
      table.add_row(std::move(row));
    }
    table.print(os);
  }

  os << "\nCSV:\ngroup,deadline_factor,strategy,relative_energy,stddev,min,max,graphs,skipped\n";
  CsvWriter csv(os);
  for (const double factor : factors)
    for (const std::string& group : group_order)
      for (const core::StrategyKind k : core::kAllStrategies)
        if (const auto* g = find(group, factor, k); g != nullptr)
          csv.row(group, factor, core::to_string(k), fmt_fixed(g->mean_relative_energy, 6),
                  fmt_fixed(g->stddev_relative_energy, 6),
                  fmt_fixed(g->min_relative_energy, 6), fmt_fixed(g->max_relative_energy, 6),
                  g->num_graphs, g->num_skipped);
}

/// Runs the full figs-10/11 style experiment for one granularity.
inline void run_granularity_figure(const char* figure_name, Cycles cycles_per_unit,
                                   const CommonOptions& opts, std::ostream& os) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);

  std::vector<core::SuiteEntry> entries = make_random_suite(
      stg::figure_group_sizes(), opts.effective_graphs(), cycles_per_unit, opts.seed);
  append_application_graphs(entries, cycles_per_unit);

  core::SweepConfig cfg;
  cfg.threads = opts.threads;
  const auto results = core::run_sweep(entries, model, ladder, cfg);
  const auto agg = core::aggregate_relative(results);

  std::vector<std::string> group_order;
  for (const std::size_t s : stg::figure_group_sizes())
    group_order.push_back(std::to_string(s));
  group_order.insert(group_order.end(), {"fpppp", "robot", "sparse"});

  os << figure_name << " — " << entries.size() << " graphs, "
     << opts.effective_graphs() << " per random group\n";
  print_relative_energy_report(agg, group_order, cfg.deadline_factors, os);
}

/// Runs the Figs 12/13-style experiment: energy / total-work vs average
/// parallelism, deadline 2 x CPL, sizes 1000/2000/2500/3000, one CSV point
/// per (graph, strategy), plus a spread summary table.
inline void run_parallelism_figure(const char* name, Cycles cycles_per_unit,
                                   const CommonOptions& opts, std::ostream& os) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);

  const std::vector<std::size_t> sizes{1000, 2000, 2500, 3000};
  const std::vector<core::SuiteEntry> entries =
      make_random_suite(sizes, opts.effective_graphs(), cycles_per_unit, opts.seed);

  core::SweepConfig cfg;
  cfg.deadline_factors = {2.0};
  cfg.threads = opts.threads;
  const auto results = core::run_sweep(entries, model, ladder, cfg);

  os << name << " — one point per (graph, strategy); deadline = 2 x CPL\n";
  os << "CSV:\ngraph,size_group,parallelism,strategy,energy_j,total_work_cycles,"
        "energy_per_gigacycle_j,procs\n";
  CsvWriter csv(os);
  struct Stats {
    double lo = 1e300, hi = 0.0;
  };
  std::map<std::string, Stats> per_strategy;  // energy-per-work spread
  for (const auto& r : results) {
    if (!r.feasible) continue;
    const double epw = r.energy.value() / (static_cast<double>(r.total_work) / 1e9);
    csv.row(r.graph_name, r.group, fmt_fixed(r.parallelism, 3),
            core::to_string(r.strategy), fmt_fixed(r.energy.value(), 6), r.total_work,
            fmt_fixed(epw, 6), r.num_procs);
    auto& s = per_strategy[std::string(core::to_string(r.strategy))];
    s.lo = std::min(s.lo, epw);
    s.hi = std::max(s.hi, epw);
  }

  os << "\nEnergy per gigacycle of work [J], spread across the suite:\n";
  TextTable table({"strategy", "min", "max", "max/min"});
  for (const auto& [k, s] : per_strategy)
    table.row(k, fmt_fixed(s.lo, 3), fmt_fixed(s.hi, 3), fmt_fixed(s.hi / s.lo, 2));
  table.print(os);
  os << "(S&S's max/min spread is the low-parallelism blow-up visible in the "
        "paper's scatter; LAMPS+PS stays near-flat.)\n";
}

}  // namespace lamps::bench
