// Extension experiment: direct optimality gaps on small instances.
//
// The paper argues indirectly (via LIMIT-SF) that LS-EDF leaves almost
// nothing on the table.  For small graphs we can check directly against a
// branch-and-bound optimum: this bench reports, over a sample of 8-12 task
// graphs, (a) the LS-EDF makespan gap vs the exact minimal makespan and
// (b) the LAMPS energy gap vs the exact single-frequency/no-PS optimum.
#include <iostream>

#include "core/exact.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "sched/list_scheduler.hpp"
#include "stg/random_gen.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::size_t instances = 24;
  std::size_t tasks = 10;
  CliParser cli("Extension — LS-EDF / LAMPS optimality gaps vs branch-and-bound");
  cli.add_option("instances", "number of random instances", &instances);
  cli.add_option("tasks", "tasks per instance (keep <= 12 for exact search)", &tasks);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);

  std::cout << "Optimality gaps over " << instances << " instances of " << tasks
            << " tasks (deadline 2 x CPL, coarse grain)\n";
  std::cout << "CSV:\nseed,method,procs,ls_makespan,opt_makespan,ms_gap,"
               "lamps_energy_j,opt_energy_j,energy_gap,proven\n";
  CsvWriter csv(std::cout);

  double worst_ms_gap = 0.0, sum_ms_gap = 0.0;
  double worst_e_gap = 0.0, sum_e_gap = 0.0;
  std::size_t proven = 0, counted = 0;

  for (std::uint64_t seed = 1; seed <= instances; ++seed) {
    stg::RandomGraphSpec spec;
    spec.num_tasks = tasks;
    spec.method = seed % 2 == 0 ? stg::GenMethod::kSamePred : stg::GenMethod::kLayrPred;
    spec.num_layers = 3;
    spec.avg_degree = 1.5;
    spec.max_weight = 12;
    spec.seed = seed;
    const graph::TaskGraph g =
        graph::scale_weights(stg::generate_random(spec), 3'100'000);

    core::Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model.max_frequency().value() * 2.0};

    const std::size_t procs = 3;
    const core::ExactMakespanResult opt_ms = core::exact_min_makespan(g, procs);
    const sched::Schedule ls =
        sched::list_schedule_edf(g, procs, prob.deadline_cycles_at_fmax());
    const double ms_gap = static_cast<double>(ls.makespan()) /
                              static_cast<double>(opt_ms.makespan) -
                          1.0;

    const core::ExactEnergyResult opt_e = core::exact_min_energy(prob, 6);
    const core::StrategyResult lam = core::lamps_schedule(prob);
    if (!opt_e.feasible || !lam.feasible) continue;
    const double e_gap = lam.energy().value() / opt_e.energy.value() - 1.0;

    csv.row(seed, stg::to_string(spec.method), procs, ls.makespan(), opt_ms.makespan,
            fmt_fixed(ms_gap, 4), fmt_fixed(lam.energy().value(), 6),
            fmt_fixed(opt_e.energy.value(), 6), fmt_fixed(e_gap, 4),
            (opt_ms.proven && opt_e.proven) ? 1 : 0);
    worst_ms_gap = std::max(worst_ms_gap, ms_gap);
    sum_ms_gap += ms_gap;
    worst_e_gap = std::max(worst_e_gap, e_gap);
    sum_e_gap += e_gap;
    proven += (opt_ms.proven && opt_e.proven);
    ++counted;
  }

  TextTable t({"metric", "mean", "worst"});
  const double dn = counted > 0 ? static_cast<double>(counted) : 1.0;
  t.row("LS-EDF makespan gap", fmt_percent(sum_ms_gap / dn), fmt_percent(worst_ms_gap));
  t.row("LAMPS energy gap", fmt_percent(sum_e_gap / dn), fmt_percent(worst_e_gap));
  std::cout << '\n';
  t.print(std::cout);
  std::cout << counted << " instances, " << proven << " fully proven optimal\n";
  return 0;
}
