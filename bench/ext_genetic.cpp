// Extension experiment: integrated genetic scheduling (CASPER-style,
// paper's reference [18]) vs LAMPS+PS vs the LIMIT-SF bound.
//
// The paper's §4.4/§6 argument is that LIMIT-SF leaves so little headroom
// that no scheduling algorithm — however expensive — can improve much on
// LS-EDF.  The GA here co-evolves the priority permutation and the
// processor count at ~100x LAMPS's scheduling cost; the interesting output
// is how many additional points of the S&S -> LIMIT-SF headroom that buys.
#include <iostream>

#include "core/genetic.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "stg/suite.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::size_t graphs = 8;
  std::size_t tasks = 80;
  std::size_t population = 32;
  std::size_t generations = 40;
  CliParser cli("Extension — genetic integrated scheduler vs LAMPS+PS");
  cli.add_option("graphs", "number of random graphs", &graphs);
  cli.add_option("tasks", "tasks per graph", &tasks);
  cli.add_option("population", "GA population", &population);
  cli.add_option("generations", "GA generations", &generations);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);

  std::cout << "GA vs LAMPS+PS, " << graphs << " graphs of " << tasks
            << " tasks, coarse grain\nCSV:\n"
               "deadline_factor,lamps_ps_headroom,ga_headroom,extra_points,"
               "lamps_schedules,ga_schedules\n";
  CsvWriter csv(std::cout);
  TextTable table({"deadline", "LAMPS+PS headroom", "GA headroom", "GA extra",
                   "LAMPS scheds", "GA scheds"});

  core::GeneticOptions ga;
  ga.population = population;
  ga.generations = generations;

  for (const double factor : {1.5, 2.0, 4.0}) {
    double ps_sum = 0.0, ga_sum = 0.0;
    std::size_t ps_scheds = 0, ga_scheds = 0, n = 0;
    for (std::size_t i = 0; i < graphs; ++i) {
      const auto specs = stg::random_group_specs(tasks, i + 1);
      const graph::TaskGraph g =
          graph::scale_weights(stg::generate_random(specs[i]),
                               stg::kCoarseGrainCyclesPerUnit);
      core::Problem prob;
      prob.graph = &g;
      prob.model = &model;
      prob.ladder = &ladder;
      prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                              model.max_frequency().value() * factor};
      const auto sns = core::schedule_and_stretch(prob);
      const auto lim = core::limit_sf(prob);
      const auto ps = core::lamps_schedule_ps(prob);
      const auto gar = core::genetic_schedule(prob, ga);
      if (!sns.feasible || !lim.feasible || !ps.feasible || !gar.feasible) continue;
      const double headroom = sns.energy().value() - lim.energy().value();
      if (headroom <= 0.0) continue;
      ps_sum += (sns.energy().value() - ps.energy().value()) / headroom;
      ga_sum += (sns.energy().value() - gar.energy().value()) / headroom;
      ps_scheds += ps.schedules_computed;
      ga_scheds += gar.schedules_computed;
      ++n;
    }
    if (n == 0) continue;
    const double dn = static_cast<double>(n);
    table.row(fmt_fixed(factor, 1) + "x", fmt_percent(ps_sum / dn),
              fmt_percent(ga_sum / dn), fmt_percent((ga_sum - ps_sum) / dn),
              ps_scheds / n, ga_scheds / n);
    csv.row(factor, fmt_fixed(ps_sum / dn, 4), fmt_fixed(ga_sum / dn, 4),
            fmt_fixed((ga_sum - ps_sum) / dn, 4), ps_scheds / n, ga_scheds / n);
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "(headroom = fraction of the S&S -> LIMIT-SF gap closed; 'GA extra' is\n"
               " what ~two orders of magnitude more scheduling work buys.)\n";
  return 0;
}
