// Ablation motivated by paper section 4.4: LS-EDF is not provably optimal —
// how much energy is left on the table by the choice of list-scheduling
// priority?  LIMIT-SF bounds what ANY priority could achieve, so we report
// for each policy the mean attained fraction of the S&S -> LIMIT-SF
// headroom:  (E_S&S - E_policy) / (E_S&S - E_LIMIT-SF), per deadline.
//
// The paper's conclusion — EDF already attains >94% of the possible saving
// for coarse-grain graphs, so better schedulers cannot help much — should
// reproduce as: EDF and bottom-level close together near the top, FIFO and
// random below.
#include <iostream>

#include "bench_common.hpp"
#include "graph/analysis.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  bench::CommonOptions opts;
  CliParser cli("Ablation — list-scheduling priority policies vs the LIMIT-SF headroom");
  opts.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);

  std::vector<core::SuiteEntry> entries = bench::make_random_suite(
      {100, 500, 1000}, opts.effective_graphs(), stg::kCoarseGrainCyclesPerUnit, opts.seed);
  bench::append_application_graphs(entries, stg::kCoarseGrainCyclesPerUnit);

  const std::vector<sched::PriorityPolicy> policies{
      sched::PriorityPolicy::kEdf, sched::PriorityPolicy::kBottomLevel,
      sched::PriorityPolicy::kFifo, sched::PriorityPolicy::kRandom};
  const std::vector<double> factors{1.5, 2.0, 4.0, 8.0};

  std::cout << "Priority-policy ablation over " << entries.size()
            << " coarse-grain graphs; metric: attained fraction of the\n"
               "S&S->LIMIT-SF headroom using LAMPS+PS under each policy.\n";
  std::cout << "\nCSV:\npolicy,deadline_factor,mean_headroom_fraction,graphs\n";
  CsvWriter csv(std::cout);

  TextTable table({"policy", "d=1.5x", "d=2x", "d=4x", "d=8x"});
  for (const sched::PriorityPolicy policy : policies) {
    std::vector<std::string> row{std::string(sched::to_string(policy))};
    for (const double factor : factors) {
      double sum = 0.0;
      std::size_t n = 0;
      for (const core::SuiteEntry& e : entries) {
        core::Problem prob;
        prob.graph = &e.graph;
        prob.model = &model;
        prob.ladder = &ladder;
        prob.policy = sched::PriorityPolicy::kEdf;  // S&S baseline stays EDF
        prob.deadline =
            Seconds{static_cast<double>(graph::critical_path_length(e.graph)) /
                    model.max_frequency().value() * factor};
        const auto sns = core::schedule_and_stretch(prob);
        const auto lim = core::limit_sf(prob);
        prob.policy = policy;
        prob.priority_seed = 0xab1a7e;
        const auto r = core::lamps_schedule_ps(prob);
        if (!sns.feasible || !lim.feasible || !r.feasible) continue;
        const double headroom = sns.energy().value() - lim.energy().value();
        if (headroom <= 0.0) continue;
        sum += (sns.energy().value() - r.energy().value()) / headroom;
        ++n;
      }
      const double mean = n != 0 ? sum / static_cast<double>(n) : 0.0;
      row.push_back(fmt_percent(mean));
      csv.row(sched::to_string(policy), factor, fmt_fixed(mean, 4), n);
    }
    table.add_row(std::move(row));
  }
  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
