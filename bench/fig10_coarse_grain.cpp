// Reproduces paper Fig 10 (a-d): mean energy consumption relative to S&S
// for coarse-grain tasks (1 STG weight unit = 3.1e6 cycles = 1 ms at
// f_max), for deadlines of 1.5/2/4/8 x the critical path length, across
// the random size groups and the three application graphs.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace lamps;
  bench::CommonOptions opts;
  CliParser cli("Fig 10 — relative energy, coarse-grain tasks");
  opts.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  bench::run_granularity_figure("Fig 10 (coarse grain: 1 unit = 3.1e6 cycles)",
                                stg::kCoarseGrainCyclesPerUnit, opts, std::cout);
  return 0;
}
