// Reproduces paper Fig 11 (a-d): mean energy consumption relative to S&S
// for fine-grain tasks (1 STG weight unit = 3.1e4 cycles = 10 us at f_max),
// for deadlines of 1.5/2/4/8 x the critical path length.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace lamps;
  bench::CommonOptions opts;
  CliParser cli("Fig 11 — relative energy, fine-grain tasks");
  opts.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  bench::run_granularity_figure("Fig 11 (fine grain: 1 unit = 3.1e4 cycles)",
                                stg::kFineGrainCyclesPerUnit, opts, std::cout);
  return 0;
}
