// Reproduces paper Fig 2: (a) power and (b) energy-per-cycle as functions
// of the normalized operating frequency, split into the AC / DC / on
// components, plus the continuous and discrete critical frequencies.
#include <iostream>

#include "power/dvs_ladder.hpp"
#include "power/power_model.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::size_t samples = 64;
  CliParser cli("Fig 2 — power and energy per cycle vs normalized frequency");
  cli.add_option("samples", "number of Vdd sample points", &samples);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const double f_max = model.max_frequency().value();

  std::cout << "Fig 2 — 70 nm power model curves\n";
  std::cout << "f_max = " << fmt_fixed(f_max / 1e9, 3) << " GHz at Vdd = "
            << model.tech().vdd_nominal.value() << " V\n";
  std::cout << "critical frequency (continuous) = "
            << fmt_fixed(model.critical_frequency().value() / f_max, 3)
            << " x f_max (paper: 0.38)\n";
  const auto& crit = ladder.critical_level();
  std::cout << "critical level (discrete)      = " << fmt_fixed(crit.f_norm, 3)
            << " x f_max at " << crit.vdd.value() << " V (paper: 0.41 at 0.7 V)\n\n";

  TextTable table({"f/f_max", "Vdd [V]", "Pac [W]", "Pdc [W]", "Pon [W]", "Ptot [W]",
                   "Eac [nJ]", "Edc [nJ]", "Eon [nJ]", "Etot [nJ]"});
  std::cout << "CSV:\nf_norm,vdd,p_ac,p_dc,p_on,p_total,e_ac_nj,e_dc_nj,e_on_nj,e_total_nj\n";
  CsvWriter csv(std::cout);

  const double v_lo = model.min_meaningful_vdd().value() + 0.02;
  const double v_hi = model.tech().vdd_nominal.value();
  for (std::size_t i = 0; i < samples; ++i) {
    const Volts vdd{v_lo + (v_hi - v_lo) * static_cast<double>(i) /
                               static_cast<double>(samples - 1)};
    const Hertz f = model.frequency(vdd);
    const power::PowerBreakdown p = model.active_power(vdd);
    const double fn = f.value() / f_max;
    const double e_ac = p.dynamic.value() / f.value() * 1e9;
    const double e_dc = p.leakage.value() / f.value() * 1e9;
    const double e_on = p.intrinsic.value() / f.value() * 1e9;
    csv.row(fmt_fixed(fn, 4), fmt_fixed(vdd.value(), 3), fmt_fixed(p.dynamic.value(), 4),
            fmt_fixed(p.leakage.value(), 4), fmt_fixed(p.intrinsic.value(), 4),
            fmt_fixed(p.total().value(), 4), fmt_fixed(e_ac, 4), fmt_fixed(e_dc, 4),
            fmt_fixed(e_on, 4), fmt_fixed(e_ac + e_dc + e_on, 4));
    if (i % (samples / 16 + 1) == 0 || i == samples - 1)
      table.row(fmt_fixed(fn, 3), fmt_fixed(vdd.value(), 3), fmt_fixed(p.dynamic.value(), 3),
                fmt_fixed(p.leakage.value(), 3), fmt_fixed(p.intrinsic.value(), 3),
                fmt_fixed(p.total().value(), 3), fmt_fixed(e_ac, 3), fmt_fixed(e_dc, 3),
                fmt_fixed(e_on, 3), fmt_fixed(e_ac + e_dc + e_on, 3));
  }
  std::cout << "\nSampled table:\n";
  table.print(std::cout);
  return 0;
}
