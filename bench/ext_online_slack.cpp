// Extension experiment: online slack reclamation under execution-time
// variability (the paper's reference [1], Zhu et al., named in its
// future-work section).
//
// The static plan budgets worst-case execution times; real tasks finish
// early.  This bench sweeps the BCET/WCET ratio and reports the mean energy
// of (a) executing the LAMPS+PS plan at its static level (early finishes
// just widen the idle gaps) and (b) online greedy slack reclamation that
// slows not-yet-run tasks into the freed time — both normalized to the
// static WCET prediction.
#include <iostream>

#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "sim/online.hpp"
#include "stg/suite.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::size_t graphs = 10;
  std::size_t tasks = 200;
  std::size_t runs = 5;
  CliParser cli("Extension — online slack reclamation vs static execution");
  cli.add_option("graphs", "number of random graphs", &graphs);
  cli.add_option("tasks", "tasks per graph", &tasks);
  cli.add_option("runs", "variability draws per graph", &runs);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const power::SleepModel sleep(model);

  std::cout << "Online slack reclamation, " << graphs << " graphs x " << runs
            << " runs, deadline 2 x CPL, coarse grain\n";
  std::cout << "CSV:\nbcet_ratio,static_rel,reclaim_rel,reclaim_gain\n";
  CsvWriter csv(std::cout);
  TextTable table({"BCET/WCET", "static run", "reclaiming run", "reclaim gain"});

  for (const double ratio : {1.0, 0.8, 0.6, 0.4, 0.2}) {
    double static_sum = 0.0, reclaim_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < graphs; ++i) {
      const auto specs = stg::random_group_specs(tasks, i + 1);
      const graph::TaskGraph g =
          graph::scale_weights(stg::generate_random(specs[i]),
                               stg::kCoarseGrainCyclesPerUnit);
      core::Problem prob;
      prob.graph = &g;
      prob.model = &model;
      prob.ladder = &ladder;
      prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                              model.max_frequency().value() * 2.0};
      const core::StrategyResult plan = core::lamps_schedule_ps(prob);
      if (!plan.feasible || !plan.schedule.has_value()) continue;
      const auto& lvl = ladder.level(plan.level_index);
      const double planned = plan.energy().value();

      for (std::size_t run = 0; run < runs; ++run) {
        sim::OnlineOptions opts;
        opts.bcet_ratio = ratio;
        opts.seed = child_seed(child_seed(0x57ac4, i), run);
        opts.reclaim = false;
        const auto st = sim::simulate_online(*plan.schedule, g, ladder, lvl,
                                             prob.deadline, sleep, opts);
        opts.reclaim = true;
        const auto rc = sim::simulate_online(*plan.schedule, g, ladder, lvl,
                                             prob.deadline, sleep, opts);
        if (!st.met_deadline || !rc.met_deadline) continue;
        static_sum += st.breakdown.total().value() / planned;
        reclaim_sum += rc.breakdown.total().value() / planned;
        ++n;
      }
    }
    if (n == 0) continue;
    const double dn = static_cast<double>(n);
    const double gain = 1.0 - (reclaim_sum / static_sum);
    table.row(fmt_fixed(ratio, 1), fmt_percent(static_sum / dn),
              fmt_percent(reclaim_sum / dn), fmt_percent(gain));
    csv.row(ratio, fmt_fixed(static_sum / dn, 4), fmt_fixed(reclaim_sum / dn, 4),
            fmt_fixed(gain, 4));
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "(100% = the WCET-budgeted static prediction; values below 100% are the\n"
               " energy actually consumed once tasks finish early.)\n";
  return 0;
}
