// Scheduler-runtime micro-benchmarks (google-benchmark).
//
// Paper section 4.2: "for all benchmarks finding the optimal configuration
// never took more than 20 seconds on a 3 GHz Pentium 4."  These benches
// time (a) a single LS-EDF invocation at several graph sizes and (b) the
// full LAMPS / LAMPS+PS configuration searches on the application graphs,
// verifying the bound holds with generous margin on modern hardware.
#include <benchmark/benchmark.h>

#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "sched/list_scheduler.hpp"
#include "stg/suite.hpp"

namespace {

using namespace lamps;

const power::PowerModel& model() {
  static const power::PowerModel m;
  return m;
}
const power::DvsLadder& ladder() {
  static const power::DvsLadder l{model()};
  return l;
}

graph::TaskGraph random_graph(std::size_t size) {
  auto specs = stg::random_group_specs(size, 3);
  return graph::scale_weights(stg::generate_random(specs[2]),
                              stg::kCoarseGrainCyclesPerUnit);
}

core::Problem make_problem(const graph::TaskGraph& g, double factor) {
  core::Problem p;
  p.graph = &g;
  p.model = &model();
  p.ladder = &ladder();
  p.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                       model().max_frequency().value() * factor};
  return p;
}

void BM_ListScheduleEdf(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  const Cycles deadline = 2 * graph::critical_path_length(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::list_schedule_edf(g, 8, deadline));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_tasks()));
}
BENCHMARK(BM_ListScheduleEdf)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMicrosecond);

void BM_LampsSearch(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  const core::Problem prob = make_problem(g, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lamps_schedule(prob));
  }
}
BENCHMARK(BM_LampsSearch)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_LampsPsSearch(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  const core::Problem prob = make_problem(g, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lamps_schedule_ps(prob));
  }
}
BENCHMARK(BM_LampsPsSearch)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_LampsPsApplicationGraph(benchmark::State& state) {
  const auto apps = stg::application_graphs();
  const graph::TaskGraph g = graph::scale_weights(
      apps[static_cast<std::size_t>(state.range(0))], stg::kCoarseGrainCyclesPerUnit);
  const core::Problem prob = make_problem(g, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lamps_schedule_ps(prob));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_LampsPsApplicationGraph)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void BM_SnsSearch(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  const core::Problem prob = make_problem(g, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_and_stretch(prob));
  }
}
BENCHMARK(BM_SnsSearch)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace
