// Scheduler-runtime micro-benchmarks (google-benchmark).
//
// Paper section 4.2: "for all benchmarks finding the optimal configuration
// never took more than 20 seconds on a 3 GHz Pentium 4."  These benches
// time (a) a single LS-EDF invocation at several graph sizes and (b) the
// full LAMPS / LAMPS+PS configuration searches on the application graphs,
// verifying the bound holds with generous margin on modern hardware.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iterator>
#include <vector>

#include "core/incremental.hpp"
#include "core/request.hpp"
#include "core/strategy.hpp"
#include "energy/evaluator.hpp"
#include "energy/gap_profile.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "obs/metrics.hpp"
#include "sched/list_scheduler.hpp"
#include "stg/suite.hpp"

namespace {

using namespace lamps;

// Search-side observability counters reported per iteration next to the
// timings: they flow into --benchmark_out JSON untouched, so
// results/BENCH_scheduler.json records how the ScheduleCache and the
// Graham-bound short-circuits behaved during the timed runs.
constexpr const char* kSearchCounters[] = {
    "schedule_cache.schedule_hit",     "schedule_cache.schedule_miss",
    "schedule_cache.profile_hit",      "schedule_cache.profile_miss",
    "schedule_cache.profile_from_schedule",
    "schedule_cache.store_schedule_hit", "schedule_cache.store_profile_hit",
    "search.graham_shortcircuit_upper", "search.graham_shortcircuit_lower",
    "search.probe_gap_only",           "search.probe_materialized",
};

std::vector<std::uint64_t> snapshot_search_counters() {
  std::vector<std::uint64_t> v;
  v.reserve(std::size(kSearchCounters));
  for (const char* name : kSearchCounters)
    v.push_back(obs::Registry::global().counter_value(name));
  return v;
}

void report_search_counters(benchmark::State& state,
                            const std::vector<std::uint64_t>& before) {
  const std::vector<std::uint64_t> after = snapshot_search_counters();
  const auto iters = static_cast<double>(state.iterations());
  if (iters <= 0.0) return;
  for (std::size_t i = 0; i < std::size(kSearchCounters); ++i)
    state.counters[kSearchCounters[i]] =
        benchmark::Counter(static_cast<double>(after[i] - before[i]) / iters);
}

const power::PowerModel& model() {
  static const power::PowerModel m;
  return m;
}
const power::DvsLadder& ladder() {
  static const power::DvsLadder l{model()};
  return l;
}

graph::TaskGraph random_graph(std::size_t size) {
  auto specs = stg::random_group_specs(size, 3);
  return graph::scale_weights(stg::generate_random(specs[2]),
                              stg::kCoarseGrainCyclesPerUnit);
}

core::Problem make_problem(const graph::TaskGraph& g, double factor) {
  core::Problem p;
  p.graph = &g;
  p.model = &model();
  p.ladder = &ladder();
  p.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                       model().max_frequency().value() * factor};
  return p;
}

void BM_ListScheduleEdf(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  const Cycles deadline = 2 * graph::critical_path_length(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::list_schedule_edf(g, 8, deadline));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_tasks()));
}
BENCHMARK(BM_ListScheduleEdf)
    ->Arg(100)->Arg(1000)->Arg(5000)->Arg(50000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_LampsSearch(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  const core::Problem prob = make_problem(g, 2.0);
  const auto before = snapshot_search_counters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lamps_schedule(prob));
  }
  report_search_counters(state, before);
}
BENCHMARK(BM_LampsSearch)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_LampsPsSearch(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  const core::Problem prob = make_problem(g, 2.0);
  const auto before = snapshot_search_counters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lamps_schedule_ps(prob));
  }
  report_search_counters(state, before);
}
BENCHMARK(BM_LampsPsSearch)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_LampsPsApplicationGraph(benchmark::State& state) {
  const auto apps = stg::application_graphs();
  const graph::TaskGraph g = graph::scale_weights(
      apps[static_cast<std::size_t>(state.range(0))], stg::kCoarseGrainCyclesPerUnit);
  const core::Problem prob = make_problem(g, 2.0);
  const auto before = snapshot_search_counters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lamps_schedule_ps(prob));
  }
  report_search_counters(state, before);
  state.SetLabel(g.name());
}
BENCHMARK(BM_LampsPsApplicationGraph)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

// ---- Paired level-sweep benches: the naive per-level gap walk vs the
// GapProfile (built once per schedule, each level answered from the sorted
// gap lengths).  Both produce bit-identical EnergyBreakdowns — see
// tests/gap_profile_test.cpp — so the pair isolates the representation's
// speedup at identical results.

sched::Schedule sweep_schedule(const graph::TaskGraph& g) {
  const Cycles deadline = 2 * graph::critical_path_length(g);
  return sched::list_schedule_edf(g, 8, deadline);
}

Seconds sweep_horizon(const sched::Schedule& s) {
  // Generous horizon: the makespan at the slowest ladder level plus 10%,
  // so every level of the sweep fits.
  const power::DvsLevel& slowest = ladder().level(0);
  return Seconds{cycles_to_time(s.makespan(), slowest.f).value() * 1.1};
}

void BM_LevelSweepNaive(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  const sched::Schedule s = sweep_schedule(g);
  const Seconds horizon = sweep_horizon(s);
  const power::SleepModel sleep{model()};
  const energy::PsOptions ps{true, true};
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < ladder().size(); ++i)
      acc += energy::evaluate_energy(s, ladder().level(i), horizon, sleep, ps).total().value();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_LevelSweepNaive)->Arg(1000)->Arg(5000)->Unit(benchmark::kMicrosecond);

void BM_LevelSweepGapProfile(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  const sched::Schedule s = sweep_schedule(g);
  const Seconds horizon = sweep_horizon(s);
  const power::SleepModel sleep{model()};
  const energy::PsOptions ps{true, true};
  for (auto _ : state) {
    const energy::GapProfile prof(s);  // include the build: one per schedule
    double acc = 0.0;
    for (std::size_t i = 0; i < ladder().size(); ++i)
      acc += prof.evaluate(ladder().level(i), horizon, sleep, ps).total().value();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_LevelSweepGapProfile)->Arg(1000)->Arg(5000)->Unit(benchmark::kMicrosecond);

void BM_LampsPsSearchParallel(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  core::Problem prob = make_problem(g, 2.0);
  prob.search_threads = 0;  // hardware concurrency
  const auto before = snapshot_search_counters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lamps_schedule_ps(prob));
  }
  report_search_counters(state, before);
}
BENCHMARK(BM_LampsPsSearchParallel)->Arg(5000)->Unit(benchmark::kMillisecond)->UseRealTime();

// ---- Incremental rescheduling: the dominant serve shape is one graph
// asked about at many deadlines.  The pair below times the identical
// request cycle with and without a ScheduleBank; with one, every
// iteration's schedules come from the structure's ProfileStore (the
// warm-up paid the from-scratch cost once per deadline) and only the
// deadline-dependent arithmetic reruns.  Responses are bit-identical
// either way — see tests/incremental_test.cpp.

std::vector<core::ServiceRequest> reschedule_cycle(const graph::TaskGraph& g) {
  std::vector<core::ServiceRequest> reqs;
  for (const double factor : {1.7, 2.0, 2.3, 2.6}) {
    reqs.push_back(core::ServiceRequest{
        g,
        Seconds{static_cast<double>(graph::critical_path_length(g)) /
                model().max_frequency().value() * factor},
        core::StrategyKind::kLampsPs});
  }
  return reqs;
}

void BM_IncrementalReschedule(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  const std::vector<core::ServiceRequest> reqs = reschedule_cycle(g);
  core::ScheduleBank bank;
  for (const core::ServiceRequest& req : reqs)  // warm the structure's store
    benchmark::DoNotOptimize(core::run_service_request(req, model(), ladder(), &bank));
  const auto before = snapshot_search_counters();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_service_request(reqs[i], model(), ladder(), &bank));
    i = (i + 1) % reqs.size();
  }
  report_search_counters(state, before);
}
BENCHMARK(BM_IncrementalReschedule)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_IncrementalRescheduleScratch(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  const std::vector<core::ServiceRequest> reqs = reschedule_cycle(g);
  const auto before = snapshot_search_counters();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_service_request(reqs[i], model(), ladder()));
    i = (i + 1) % reqs.size();
  }
  report_search_counters(state, before);
}
BENCHMARK(BM_IncrementalRescheduleScratch)
    ->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_SnsSearch(benchmark::State& state) {
  const graph::TaskGraph g = random_graph(static_cast<std::size_t>(state.range(0)));
  const core::Problem prob = make_problem(g, 2.0);
  const auto before = snapshot_search_counters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_and_stretch(prob));
  }
  report_search_counters(state, before);
}
BENCHMARK(BM_SnsSearch)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace
