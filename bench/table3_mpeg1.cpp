// Reproduces paper Table 3: energy consumption and processor counts for the
// MPEG-1 encoding benchmark (one 15-frame GOP, real-time deadline 0.5 s)
// under all six approaches.
//
// The paper reports (in its unit): S&S 18.116 (7 procs), LAMPS 13.290 (3),
// S&S+PS 10.949 (7), LAMPS+PS 10.947 (6), LIMIT-SF/MF 10.940.  We report
// joules; the ratios are the comparable quantity (the paper's absolute unit
// is not stated).
#include <iostream>

#include "apps/mpeg.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  double deadline_s = 0.5;
  CliParser cli("Table 3 — MPEG-1 GOP encoding under all six approaches");
  cli.add_option("deadline", "GOP deadline in seconds", &deadline_s);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const graph::TaskGraph g = apps::mpeg1_gop_graph();

  std::cout << "Table 3 — MPEG-1 (15-frame GOP, deadline " << deadline_s << " s)\n";
  std::cout << "graph: " << g.num_tasks() << " tasks, total work " << g.total_work()
            << " cycles, CPL " << graph::critical_path_length(g) << " cycles, parallelism "
            << fmt_fixed(graph::average_parallelism(g), 2) << "\n\n";

  core::Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = Seconds{deadline_s};

  const core::StrategyResult baseline = core::run_strategy(core::StrategyKind::kSns, prob);

  TextTable table({"approach", "energy [J]", "vs S&S", "# procs", "level Vdd [V]",
                   "f/f_max", "shutdowns"});
  std::cout << "CSV:\napproach,energy_j,relative_to_sns,procs,vdd,f_norm,shutdowns\n";
  CsvWriter csv(std::cout);
  for (const core::StrategyKind k : core::kAllStrategies) {
    const core::StrategyResult r = core::run_strategy(k, prob);
    const bool is_limit =
        k == core::StrategyKind::kLimitSf || k == core::StrategyKind::kLimitMf;
    const auto& lvl = ladder.level(r.level_index);
    const std::string rel =
        baseline.feasible ? fmt_percent(r.energy().value() / baseline.energy().value())
                          : "n/a";
    table.row(core::to_string(k), fmt_fixed(r.energy().value(), 4), rel,
              is_limit ? std::string("N/A") : std::to_string(r.num_procs),
              fmt_fixed(lvl.vdd.value(), 2), fmt_fixed(lvl.f_norm, 3),
              r.breakdown.shutdowns);
    csv.row(core::to_string(k), fmt_fixed(r.energy().value(), 6),
            fmt_fixed(r.energy().value() / baseline.energy().value(), 4),
            is_limit ? 0 : r.num_procs, fmt_fixed(lvl.vdd.value(), 2),
            fmt_fixed(lvl.f_norm, 4), r.breakdown.shutdowns);
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nPaper Table 3 ratios for comparison: LAMPS/S&S = 73.4%, "
               "S&S+PS/S&S = 60.4%, LAMPS+PS/S&S = 60.4%, LIMIT/S&S = 60.4%.\n";
  return 0;
}
