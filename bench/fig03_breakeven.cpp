// Reproduces paper Fig 3: the minimum number of idle cycles for processor
// shutdown to be beneficial, as a function of the normalized frequency.
#include <iostream>

#include "power/dvs_ladder.hpp"
#include "power/power_model.hpp"
#include "power/sleep_model.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::size_t samples = 48;
  CliParser cli("Fig 3 — minimum beneficial idle cycles vs normalized frequency");
  cli.add_option("samples", "number of sample points", &samples);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::SleepModel sleep(model);
  const double f_max = model.max_frequency().value();

  std::cout << "Fig 3 — PS breakeven (sleep power "
            << sleep.sleep_power().value() * 1e6 << " uW, wake energy "
            << sleep.wakeup_energy().value() * 1e6 << " uJ)\n\n";

  TextTable table({"f/f_max", "Vdd [V]", "P_idle [W]", "breakeven [ms]", "cycles [x1e6]"});
  std::cout << "CSV:\nf_norm,vdd,p_idle,breakeven_ms,breakeven_mcycles\n";
  CsvWriter csv(std::cout);

  const double v_lo = model.min_meaningful_vdd().value() + 0.02;
  const double v_hi = model.tech().vdd_nominal.value();
  for (std::size_t i = 0; i < samples; ++i) {
    const Volts vdd{v_lo + (v_hi - v_lo) * static_cast<double>(i) /
                               static_cast<double>(samples - 1)};
    const Hertz f = model.frequency(vdd);
    const Watts p_idle = model.idle_power(vdd);
    const Seconds t = sleep.breakeven_time(p_idle);
    const double cycles = sleep.breakeven_cycles(p_idle, f);
    csv.row(fmt_fixed(f.value() / f_max, 4), fmt_fixed(vdd.value(), 3),
            fmt_fixed(p_idle.value(), 5), fmt_fixed(t.value() * 1e3, 4),
            fmt_fixed(cycles / 1e6, 4));
    if (i % (samples / 12 + 1) == 0 || i == samples - 1)
      table.row(fmt_fixed(f.value() / f_max, 3), fmt_fixed(vdd.value(), 3),
                fmt_fixed(p_idle.value(), 4), fmt_fixed(t.value() * 1e3, 3),
                fmt_fixed(cycles / 1e6, 3));
  }
  std::cout << "\nSampled table (paper: ~1.7e6 cycles at f/f_max = 0.5):\n";
  table.print(std::cout);
  return 0;
}
