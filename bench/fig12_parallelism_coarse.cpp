// Reproduces paper Fig 12: energy / total work as a function of the average
// amount of parallelism (W / CPL), coarse-grain tasks, deadline 2 x CPL.
// One point per (graph, strategy); sizes 1000/2000/2500/3000 as in the
// paper.  S&S's energy-per-work blows up at low parallelism (idle
// processors keep leaking); LAMPS(+PS) stays flat.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace lamps;
  bench::CommonOptions opts;
  CliParser cli("Fig 12 — energy/work vs parallelism, coarse-grain tasks");
  opts.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;
  bench::run_parallelism_figure("Fig 12 (coarse grain)", stg::kCoarseGrainCyclesPerUnit,
                                opts, std::cout);
  return 0;
}
