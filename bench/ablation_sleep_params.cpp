// Ablation: sensitivity of the DVS/PS balance to the sleep-state
// parameters (paper section 4.3 remark: "the effectiveness of PS depends
// on both the time a processor is idle and on the intrinsic power needed
// to keep the processor on").
//
// Sweeps the intrinsic power P_on, the wake overhead E_wake and the sleep
// power, and reports the breakeven idle time at the critical level and the
// mean S&S+PS / LAMPS+PS savings over S&S on a fixed coarse-grain sample.
#include <iostream>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "power/sleep_model.hpp"

namespace {

using namespace lamps;

struct SampleResult {
  double sns_ps_rel{0.0};
  double lamps_ps_rel{0.0};
  std::size_t n{0};
};

SampleResult run_sample(const power::PowerModel& model, std::size_t graphs,
                        std::size_t tasks) {
  const power::DvsLadder ladder(model);
  SampleResult out;
  for (std::size_t i = 0; i < graphs; ++i) {
    const auto specs = stg::random_group_specs(tasks, i + 1);
    const graph::TaskGraph g = graph::scale_weights(stg::generate_random(specs[i]),
                                                    stg::kCoarseGrainCyclesPerUnit);
    core::Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model.max_frequency().value() * 2.0};
    const auto sns = core::run_strategy(core::StrategyKind::kSns, prob);
    const auto sp = core::run_strategy(core::StrategyKind::kSnsPs, prob);
    const auto lp = core::run_strategy(core::StrategyKind::kLampsPs, prob);
    if (!sns.feasible || !sp.feasible || !lp.feasible) continue;
    out.sns_ps_rel += sp.energy().value() / sns.energy().value();
    out.lamps_ps_rel += lp.energy().value() / sns.energy().value();
    ++out.n;
  }
  if (out.n > 0) {
    out.sns_ps_rel /= static_cast<double>(out.n);
    out.lamps_ps_rel /= static_cast<double>(out.n);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lamps;

  std::size_t graphs = 8;
  std::size_t tasks = 200;
  CliParser cli("Ablation — sleep-state parameter sensitivity");
  cli.add_option("graphs", "number of random graphs", &graphs);
  cli.add_option("tasks", "tasks per graph", &tasks);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  std::cout << "Sleep-parameter ablation, " << graphs << " graphs of " << tasks
            << " tasks, deadline 2 x CPL, coarse grain\n";
  std::cout << "CSV:\nparameter,value,breakeven_ms_at_crit,sns_ps_rel,lamps_ps_rel\n";
  CsvWriter csv(std::cout);
  TextTable table(
      {"parameter", "value", "breakeven @crit [ms]", "S&S+PS vs S&S", "LAMPS+PS vs S&S"});

  const auto report = [&](const char* param, const std::string& value,
                          const power::Technology& tech) {
    const power::PowerModel model(tech);
    const power::DvsLadder ladder(model);
    const power::SleepModel sleep(model);
    const double be =
        sleep.breakeven_time(ladder.critical_level().idle).value() * 1e3;
    const SampleResult r = run_sample(model, graphs, tasks);
    table.row(param, value, fmt_fixed(be, 2), fmt_percent(r.sns_ps_rel),
              fmt_percent(r.lamps_ps_rel));
    csv.row(param, value, fmt_fixed(be, 4), fmt_fixed(r.sns_ps_rel, 4),
            fmt_fixed(r.lamps_ps_rel, 4));
  };

  // Paper configuration first.
  report("paper", "P_on 0.1 W, E_wake 483 uJ", power::technology_70nm());

  for (const double p_on : {0.05, 0.2, 0.4}) {
    power::Technology t = power::technology_70nm();
    t.p_on = Watts{p_on};
    report("P_on [W]", fmt_fixed(p_on, 2), t);
  }
  for (const double e_wake_uj : {100.0, 1000.0, 5000.0}) {
    power::Technology t = power::technology_70nm();
    t.e_wake = Joules{e_wake_uj * 1e-6};
    report("E_wake [uJ]", fmt_fixed(e_wake_uj, 0), t);
  }
  for (const double p_sleep_uw : {5.0, 500.0, 5000.0}) {
    power::Technology t = power::technology_70nm();
    t.p_sleep = Watts{p_sleep_uw * 1e-6};
    report("P_sleep [uW]", fmt_fixed(p_sleep_uw, 0), t);
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout << "(Higher P_on makes idle more expensive: PS engages on shorter gaps and\n"
               " the S&S+PS saving grows; a larger E_wake pushes the breakeven out and\n"
               " erodes it — the trade-off the paper's section 4.3 frequency sweep\n"
               " exists to balance.)\n";
  return 0;
}
