// Energy-aware scheduling on a big.LITTLE multiprocessor (heterogeneous
// extension of the paper's homogeneous model; cf. its related work [23]).
//
// Sweeps the deadline factor on one graph and shows how the optimal
// processor mix migrates: tight deadlines need the big cores' speed, loose
// deadlines hand the work to the little cores' low leakage, with DVS and
// shutdown balanced per mix exactly as in LAMPS+PS.
//
// Usage: ./biglittle [--tasks 120] [--seed 3] [--bigs 4] [--littles 4]
#include <iostream>
#include <sstream>

#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "hetero/lamps_hetero.hpp"
#include "sched/gantt.hpp"
#include "stg/suite.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::size_t tasks = 120;
  std::size_t seed = 3;
  std::size_t bigs = 4;
  std::size_t littles = 4;
  CliParser cli("big.LITTLE energy-aware scheduling demo");
  cli.add_option("tasks", "graph size", &tasks);
  cli.add_option("seed", "which suite graph to use", &seed);
  cli.add_option("bigs", "number of big cores", &bigs);
  cli.add_option("littles", "number of little cores", &littles);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const hetero::Platform platform = hetero::big_little(bigs, littles);

  const auto specs = stg::random_group_specs(tasks, seed + 1);
  const graph::TaskGraph g =
      graph::scale_weights(stg::generate_random(specs[seed]),
                           stg::kCoarseGrainCyclesPerUnit);
  std::cout << "Graph " << g.name() << ": " << g.num_tasks() << " tasks, parallelism "
            << fmt_fixed(graph::average_parallelism(g), 2) << "; platform: " << bigs
            << " big + " << littles << " little (0.45x speed, 0.18x power)\n\n";

  TextTable table({"deadline", "homog LAMPS+PS [mJ]", "hetero [mJ]", "saving", "mix",
                   "f/f_max", "shutdowns"});
  hetero::HeteroResult last;
  for (const double factor : {1.2, 1.5, 2.0, 4.0, 8.0}) {
    const Seconds deadline{static_cast<double>(graph::critical_path_length(g)) /
                           model.max_frequency().value() * factor};
    core::Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = deadline;
    const core::StrategyResult homog = core::run_strategy(core::StrategyKind::kLampsPs, prob);
    const hetero::HeteroResult het =
        hetero::lamps_hetero(g, platform, model, ladder, deadline);
    if (!homog.feasible || !het.feasible) {
      table.row(fmt_fixed(factor, 1) + "x", "infeasible", "-", "-", "-", "-", "-");
      continue;
    }
    std::ostringstream mix;
    mix << het.counts[0] << "B+" << het.counts[1] << "L";
    table.row(fmt_fixed(factor, 1) + "x", fmt_fixed(homog.energy().value() * 1e3, 2),
              fmt_fixed(het.energy().value() * 1e3, 2),
              fmt_percent(1.0 - het.energy().value() / homog.energy().value()), mix.str(),
              fmt_fixed(ladder.level(het.level_index).f_norm, 3),
              het.breakdown.shutdowns);
    last = std::move(het);
  }
  table.print(std::cout);

  if (last.feasible && last.schedule.has_value()) {
    std::cout << "\nWinning schedule at the loosest deadline (processors are the "
                 "employed subset, class order big->little):\n";
    sched::GanttOptions gopts;
    gopts.width = 66;
    gopts.show_labels = false;
    sched::write_ascii_gantt(*last.schedule, g, std::cout, gopts);
  }
  std::cout << "\n(The mix column drifts from big to little cores as the deadline\n"
               " loosens: with leakage dominating, the low-power cores win whenever\n"
               " the speed is not needed — the paper's argument, generalized.)\n";
  return 0;
}
