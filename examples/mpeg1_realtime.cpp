// Real-time MPEG-1 encoding on an embedded multiprocessor (paper section
// 5.3): builds the 15-frame GOP dependence graph of Fig 9, schedules it
// with every approach against the 30 frames/s real-time requirement, and
// renders the winning LAMPS+PS schedule (ASCII + SVG file).
//
// Usage: ./mpeg1_realtime [--fps 30] [--gop IBBPBBPBBPBBPBB] [--svg out.svg]
#include <fstream>
#include <iostream>

#include "apps/mpeg.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "sched/gantt.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  double fps = 30.0;
  std::string gop = "IBBPBBPBBPBBPBB";
  std::string svg_path;
  CliParser cli("MPEG-1 GOP encoding under a real-time deadline");
  cli.add_option("fps", "required frame rate (frames/second)", &fps);
  cli.add_option("gop", "GOP frame pattern (I/P/B letters)", &gop);
  cli.add_option("svg", "write the LAMPS+PS schedule as SVG to this path", &svg_path);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  apps::MpegConfig cfg;
  cfg.gop = gop;
  cfg.deadline = Seconds{static_cast<double>(gop.size()) / fps};
  const graph::TaskGraph g = apps::mpeg1_gop_graph(cfg);

  const power::PowerModel model;
  const power::DvsLadder ladder(model);

  std::cout << "MPEG-1 encoding: GOP \"" << gop << "\" (" << g.num_tasks()
            << " frames), deadline " << cfg.deadline.value() << " s for " << fps
            << " fps\n";
  std::cout << "total work " << g.total_work() << " cycles ("
            << fmt_fixed(static_cast<double>(g.total_work()) /
                             model.max_frequency().value(),
                         3)
            << " s at f_max), critical path "
            << fmt_fixed(static_cast<double>(graph::critical_path_length(g)) /
                             model.max_frequency().value(),
                         3)
            << " s at f_max\n\n";

  core::Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = cfg.deadline;

  TextTable table({"approach", "energy [J]", "procs", "Vdd [V]", "f/f_max", "shutdowns",
                   "finish [ms]"});
  for (const core::StrategyKind k : core::kAllStrategies) {
    const core::StrategyResult r = core::run_strategy(k, prob);
    if (!r.feasible) {
      table.row(core::to_string(k), "infeasible", "-", "-", "-", "-", "-");
      continue;
    }
    const auto& lvl = ladder.level(r.level_index);
    const bool is_limit =
        k == core::StrategyKind::kLimitSf || k == core::StrategyKind::kLimitMf;
    table.row(core::to_string(k), fmt_fixed(r.energy().value(), 4),
              is_limit ? std::string("N/A") : std::to_string(r.num_procs),
              fmt_fixed(lvl.vdd.value(), 2), fmt_fixed(lvl.f_norm, 3),
              r.breakdown.shutdowns, fmt_fixed(r.completion.value() * 1e3, 1));
  }
  table.print(std::cout);

  const core::StrategyResult best = core::run_strategy(core::StrategyKind::kLampsPs, prob);
  if (best.feasible && best.schedule.has_value()) {
    const auto& lvl = ladder.level(best.level_index);
    std::cout << "\nLAMPS+PS schedule (" << best.num_procs << " processors at "
              << fmt_fixed(lvl.f_norm, 2) << " x f_max, finishing at "
              << fmt_fixed(best.completion.value() * 1e3, 1) << " ms of "
              << cfg.deadline.value() * 1e3 << " ms):\n";
    sched::GanttOptions gopts;
    gopts.width = 66;
    gopts.horizon =
        static_cast<Cycles>(cfg.deadline.value() * lvl.f.value());
    sched::write_ascii_gantt(*best.schedule, g, std::cout, gopts);

    if (!svg_path.empty()) {
      std::ofstream svg(svg_path);
      if (!svg) {
        std::cerr << "cannot write " << svg_path << '\n';
        return 1;
      }
      sched::write_svg_gantt(*best.schedule, g, svg, gopts);
      std::cout << "SVG written to " << svg_path << '\n';
    }
  }
  return 0;
}
