// File-based workflow: read a Standard Task Graph (.stg) file, scale it to
// cycles, schedule it with every approach, and emit a full report —
// schedule statistics, Gantt chart, per-state power-trace summary, and
// optional DOT/CSV exports.  This is the "bring your own task graph" entry
// point a downstream user starts from.
//
// Usage: ./stg_workflow --file data/pipeline.stg [--unit 3100000]
//        [--deadline-factor 2] [--dot out.dot] [--trace trace.csv]
#include <fstream>
#include <iostream>

#include "core/multifreq.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/io.hpp"
#include "graph/transform.hpp"
#include "sched/gantt.hpp"
#include "sched/stats.hpp"
#include "sim/power_trace.hpp"
#include "stg/format.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::string file = "data/pipeline.stg";
  double unit = 3'100'000.0;  // coarse grain: 1 unit = 1 ms at f_max
  double factor = 2.0;
  std::string dot_path;
  std::string trace_path;
  CliParser cli("Schedule a .stg task-graph file for minimum energy");
  cli.add_option("file", "input .stg file", &file);
  cli.add_option("unit", "cycles per STG weight unit", &unit);
  cli.add_option("deadline-factor", "deadline as a multiple of the CPL", &factor);
  cli.add_option("dot", "write the task graph as Graphviz DOT to this path", &dot_path);
  cli.add_option("trace", "write the LAMPS+PS power trace as CSV to this path",
                 &trace_path);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  graph::TaskGraph g = [&] {
    const graph::TaskGraph raw = stg::read_stg_file(file);
    return graph::scale_weights(raw, static_cast<Cycles>(unit));
  }();

  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const Cycles cpl = graph::critical_path_length(g);

  std::cout << "Loaded " << file << ": " << g.num_tasks() << " tasks, " << g.num_edges()
            << " edges, total work " << g.total_work() << " cycles, CPL " << cpl
            << " cycles, parallelism " << fmt_fixed(graph::average_parallelism(g), 2)
            << "\n\n";

  if (!dot_path.empty()) {
    std::ofstream dot(dot_path);
    if (!dot) {
      std::cerr << "cannot write " << dot_path << '\n';
      return 1;
    }
    graph::write_dot(g, dot);
    std::cout << "DOT written to " << dot_path << "\n\n";
  }

  core::Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline =
      Seconds{static_cast<double>(cpl) / model.max_frequency().value() * factor};
  std::cout << "Deadline: " << fmt_fixed(prob.deadline.value() * 1e3, 3) << " ms ("
            << factor << " x CPL at f_max)\n\n";

  TextTable table({"approach", "energy [mJ]", "procs", "f/f_max", "shutdowns"});
  for (const core::StrategyKind k : core::kAllStrategies) {
    const core::StrategyResult r = core::run_strategy(k, prob);
    if (!r.feasible) {
      table.row(core::to_string(k), "infeasible", "-", "-", "-");
      continue;
    }
    const bool is_limit =
        k == core::StrategyKind::kLimitSf || k == core::StrategyKind::kLimitMf;
    table.row(core::to_string(k), fmt_fixed(r.energy().value() * 1e3, 3),
              is_limit ? std::string("N/A") : std::to_string(r.num_procs),
              fmt_fixed(ladder.level(r.level_index).f_norm, 3), r.breakdown.shutdowns);
  }
  // The per-task DVS extension rides along for comparison.
  const core::MultiFreqResult mf = core::lamps_multifreq(prob);
  if (mf.feasible)
    table.row("LAMPS+MF", fmt_fixed(mf.energy().value() * 1e3, 3),
              std::to_string(mf.num_procs), "per-task", mf.breakdown.shutdowns);
  table.print(std::cout);

  const core::StrategyResult best = core::run_strategy(core::StrategyKind::kLampsPs, prob);
  if (!best.feasible || !best.schedule.has_value()) {
    std::cout << "\nInstance infeasible before the deadline at maximum frequency.\n";
    return 0;
  }
  const auto& lvl = ladder.level(best.level_index);

  std::cout << "\nLAMPS+PS schedule (" << best.num_procs << " processors at "
            << fmt_fixed(lvl.f_norm, 3) << " x f_max):\n";
  sched::GanttOptions gopts;
  gopts.width = 64;
  gopts.horizon = static_cast<Cycles>(prob.deadline.value() * lvl.f.value());
  sched::write_ascii_gantt(*best.schedule, g, std::cout, gopts);

  std::cout << '\n';
  sched::print_stats(sched::compute_stats(*best.schedule, g), std::cout);

  // Power trace of the winning configuration.
  const power::SleepModel sleep(model);
  const sim::PowerTrace trace =
      sim::simulate(*best.schedule, g, lvl, prob.deadline, sleep,
                    energy::PsOptions{true, prob.ps_allow_leading_gaps});
  std::cout << "\nPower-trace summary: exec "
            << fmt_fixed(trace.energy_in_state(sim::ProcState::kExecuting).value() * 1e3, 3)
            << " mJ, idle "
            << fmt_fixed(trace.energy_in_state(sim::ProcState::kPoweredIdle).value() * 1e3,
                         3)
            << " mJ, sleep "
            << fmt_fixed(trace.energy_in_state(sim::ProcState::kSleeping).value() * 1e3, 3)
            << " mJ, " << trace.wakeups << " wakeups ("
            << fmt_fixed(trace.wakeup_energy.value() * 1e3, 3) << " mJ)\n";
  std::cout << "Trace total " << fmt_fixed(trace.total_energy().value() * 1e3, 3)
            << " mJ vs analytic " << fmt_fixed(best.energy().value() * 1e3, 3) << " mJ\n";

  if (!trace_path.empty()) {
    std::ofstream tf(trace_path);
    if (!tf) {
      std::cerr << "cannot write " << trace_path << '\n';
      return 1;
    }
    sim::write_trace_csv(trace, tf);
    std::cout << "Trace written to " << trace_path << '\n';
  }
  return 0;
}
