// Streaming pipeline as a Kahn Process Network (paper section 3.1, Fig 1):
// a five-stage video-filter pipeline with a feedback channel is unrolled
// into a deadline-annotated DAG and scheduled for minimum energy at several
// throughput requirements, showing how the required throughput moves the
// DVS/processor-count trade-off.
//
// Usage: ./kpn_pipeline [--iterations 8] [--fps 25]
#include <iostream>

#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "kpn/unroll.hpp"
#include "sched/gantt.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::size_t iterations = 8;
  double fps = 25.0;
  CliParser cli("KPN streaming pipeline scheduled for low energy");
  cli.add_option("iterations", "number of unrolled pipeline iterations", &iterations);
  cli.add_option("fps", "required pipeline throughput (iterations/second)", &fps);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  // ---- The network: capture -> denoise -> {luma, chroma} -> blend, with a
  // one-iteration feedback from blend to denoise (temporal filtering).
  kpn::Kpn net("video-filter");
  const auto capture = net.add_process("cap", 8'000'000);
  const auto denoise = net.add_process("dns", 30'000'000);
  const auto luma = net.add_process("luma", 22'000'000);
  const auto chroma = net.add_process("chr", 14'000'000);
  const auto blend = net.add_process("bld", 12'000'000);
  net.add_channel(capture, denoise, 0);
  net.add_channel(denoise, luma, 0);
  net.add_channel(denoise, chroma, 0);
  net.add_channel(luma, blend, 0);
  net.add_channel(chroma, blend, 0);
  net.add_channel(blend, denoise, 1);  // temporal feedback, pipelined

  const power::PowerModel model;
  const power::DvsLadder ladder(model);

  const double period = 1.0 / fps;
  kpn::UnrollOptions uo;
  uo.copies = iterations;
  uo.first_deadline = Seconds{2.0 * period};  // pipeline fill allowance
  uo.throughput = fps;
  const graph::TaskGraph g = kpn::unroll(net, uo);

  std::cout << "KPN \"" << net.name() << "\": " << net.num_processes() << " processes, "
            << net.channels().size() << " channels, unrolled to " << g.num_tasks()
            << " tasks / " << g.num_edges() << " edges over " << iterations
            << " iterations at " << fps << " it/s\n";
  std::cout << "parallelism of the unrolled graph: "
            << fmt_fixed(graph::average_parallelism(g), 2) << "\n\n";

  core::Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = Seconds{uo.first_deadline.value() +
                          period * static_cast<double>(iterations - 1)};

  TextTable table({"approach", "energy [mJ]", "procs", "Vdd [V]", "f/f_max", "shutdowns"});
  for (const core::StrategyKind k : core::kAllStrategies) {
    const core::StrategyResult r = core::run_strategy(k, prob);
    if (!r.feasible) {
      table.row(core::to_string(k), "infeasible", "-", "-", "-", "-");
      continue;
    }
    const auto& lvl = ladder.level(r.level_index);
    const bool is_limit =
        k == core::StrategyKind::kLimitSf || k == core::StrategyKind::kLimitMf;
    table.row(core::to_string(k), fmt_fixed(r.energy().value() * 1e3, 2),
              is_limit ? std::string("N/A") : std::to_string(r.num_procs),
              fmt_fixed(lvl.vdd.value(), 2), fmt_fixed(lvl.f_norm, 3),
              r.breakdown.shutdowns);
  }
  table.print(std::cout);

  const core::StrategyResult best = core::run_strategy(core::StrategyKind::kLampsPs, prob);
  if (best.feasible && best.schedule.has_value()) {
    std::cout << "\nLAMPS+PS schedule (" << best.num_procs << " processors; per-iteration "
              << "deadlines every " << fmt_fixed(period * 1e3, 1) << " ms):\n";
    sched::GanttOptions gopts;
    gopts.width = 70;
    gopts.horizon = static_cast<Cycles>(prob.deadline.value() *
                                        ladder.level(best.level_index).f.value());
    sched::write_ascii_gantt(*best.schedule, g, std::cout, gopts);
  }

  // ---- Throughput sweep: tighter periods force higher frequencies.
  std::cout << "\nThroughput sweep (LAMPS+PS):\n";
  TextTable sweep({"throughput [it/s]", "energy [mJ]", "procs", "f/f_max"});
  for (const double f : {fps * 0.5, fps, fps * 1.5, fps * 2.0}) {
    kpn::UnrollOptions o = uo;
    o.throughput = f;
    o.first_deadline = Seconds{2.0 / f};
    const graph::TaskGraph gu = kpn::unroll(net, o);
    core::Problem p = prob;
    p.graph = &gu;
    p.deadline = Seconds{o.first_deadline.value() +
                         (1.0 / f) * static_cast<double>(iterations - 1)};
    const core::StrategyResult r = core::run_strategy(core::StrategyKind::kLampsPs, p);
    if (!r.feasible) {
      sweep.row(fmt_fixed(f, 1), "infeasible", "-", "-");
      continue;
    }
    sweep.row(fmt_fixed(f, 1), fmt_fixed(r.energy().value() * 1e3, 2), r.num_procs,
              fmt_fixed(ladder.level(r.level_index).f_norm, 3));
  }
  sweep.print(std::cout);
  return 0;
}
