// Periodic control application scheduled for low energy (paper section 3.1:
// periodic task sets translate into DAGs via frame-based scheduling).
//
// Models a flight-control-style workload: a fast inner loop (IMU read +
// attitude control) at 1 kHz-scale rates would be fine-grain; here we use a
// drone-autopilot profile with a 10 ms inner loop and a 40 ms vision
// pipeline, unrolled over the hyperperiod and scheduled with every
// approach.  Also demonstrates the online simulator: the same plan executed
// with realistic execution-time variability and runtime slack reclamation.
//
// Usage: ./periodic_control [--frames 2] [--bcet 0.6]
#include <iostream>

#include "apps/periodic.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "sched/gantt.hpp"
#include "sim/online.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;
  using namespace lamps::unit_literals;

  std::size_t frames = 2;
  double bcet = 0.6;
  CliParser cli("Periodic control workload: frame-based DAG + online execution");
  cli.add_option("frames", "hyperperiods to unroll", &frames);
  cli.add_option("bcet", "BCET/WCET ratio for the online run", &bcet);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  // ---- The task set (WCETs in cycles; periods on the paper's 3.1 GHz
  // scale these are sub-millisecond computations).
  apps::PeriodicTaskSet ts;
  const auto imu = ts.add_task({"imu", 1'500'000, 10.0_ms, Seconds{0}, Seconds{0}});
  const auto ctrl = ts.add_task({"ctrl", 4'000'000, 10.0_ms, 8.0_ms, Seconds{0}});
  const auto nav = ts.add_task({"nav", 6'000'000, 20.0_ms, Seconds{0}, Seconds{0}});
  const auto vision = ts.add_task({"vision", 30'000'000, 40.0_ms, Seconds{0}, Seconds{0}});
  const auto plan = ts.add_task({"plan", 8'000'000, 40.0_ms, Seconds{0}, Seconds{0}});
  ts.add_dependence(imu, ctrl);
  ts.add_dependence(imu, nav);
  ts.add_dependence(nav, plan);
  ts.add_dependence(vision, plan);

  const power::PowerModel model;
  const power::DvsLadder ladder(model);

  std::cout << "Task set: " << ts.num_tasks() << " periodic tasks, hyperperiod "
            << ts.hyperperiod().value() * 1e3 << " ms, utilization at f_max "
            << fmt_percent(ts.utilization(model.max_frequency())) << "\n";

  const graph::TaskGraph g = ts.to_task_graph(frames);
  const Seconds horizon{ts.hyperperiod().value() * static_cast<double>(frames)};
  std::cout << "Unrolled over " << frames << " hyperperiod(s): " << g.num_tasks()
            << " jobs, " << g.num_edges() << " edges, parallelism "
            << fmt_fixed(graph::average_parallelism(g), 2) << "\n\n";

  core::Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = horizon;

  TextTable table({"approach", "energy [mJ]", "procs", "f/f_max", "shutdowns"});
  for (const core::StrategyKind k : core::kAllStrategies) {
    const core::StrategyResult r = core::run_strategy(k, prob);
    if (!r.feasible) {
      table.row(core::to_string(k), "infeasible", "-", "-", "-");
      continue;
    }
    const bool is_limit =
        k == core::StrategyKind::kLimitSf || k == core::StrategyKind::kLimitMf;
    table.row(core::to_string(k), fmt_fixed(r.energy().value() * 1e3, 3),
              is_limit ? std::string("N/A") : std::to_string(r.num_procs),
              fmt_fixed(ladder.level(r.level_index).f_norm, 3), r.breakdown.shutdowns);
  }
  table.print(std::cout);

  const core::StrategyResult best = core::run_strategy(core::StrategyKind::kLampsPs, prob);
  if (!best.feasible || !best.schedule.has_value()) return 0;
  const auto& lvl = ladder.level(best.level_index);

  std::cout << "\nLAMPS+PS plan (" << best.num_procs << " processors at "
            << fmt_fixed(lvl.f_norm, 3) << " x f_max); every job meets its own "
            << "release deadline:\n";
  sched::GanttOptions gopts;
  gopts.width = 68;
  gopts.horizon = static_cast<Cycles>(horizon.value() * lvl.f.value());
  sched::write_ascii_gantt(*best.schedule, g, std::cout, gopts);

  // ---- Execute the plan with variability.
  const power::SleepModel sleep(model);
  sim::OnlineOptions on;
  on.bcet_ratio = bcet;
  on.seed = 7;
  on.reclaim = false;
  const auto st = sim::simulate_online(*best.schedule, g, ladder, lvl, horizon, sleep, on);
  on.reclaim = true;
  const auto rc = sim::simulate_online(*best.schedule, g, ladder, lvl, horizon, sleep, on);

  std::cout << "\nOnline execution with BCET/WCET = " << bcet << ":\n";
  TextTable online({"run", "energy [mJ]", "vs plan", "completion [ms]", "deadline met"});
  const double planned = best.energy().value();
  online.row("WCET plan", fmt_fixed(planned * 1e3, 3), "100.0%",
             fmt_fixed(best.completion.value() * 1e3, 2), "yes");
  online.row("static run", fmt_fixed(st.breakdown.total().value() * 1e3, 3),
             fmt_percent(st.breakdown.total().value() / planned),
             fmt_fixed(st.completion.value() * 1e3, 2), st.met_deadline ? "yes" : "NO");
  online.row("reclaiming run", fmt_fixed(rc.breakdown.total().value() * 1e3, 3),
             fmt_percent(rc.breakdown.total().value() / planned),
             fmt_fixed(rc.completion.value() * 1e3, 2), rc.met_deadline ? "yes" : "NO");
  online.print(std::cout);
  return 0;
}
