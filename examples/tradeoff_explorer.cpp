// Interactive exploration of the DVS / shutdown / processor-count
// trade-off space on a generated task graph: prints the DVS ladder, the
// shutdown breakeven per level, and the full energy-vs-processor-count
// sweep with and without PS (the decision surface LAMPS+PS searches).
//
// Usage: ./tradeoff_explorer [--tasks 300] [--seed 4] [--deadline-factor 2]
//                            [--fine] [--max-procs 24]
#include <iostream>

#include "core/lamps.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "power/sleep_model.hpp"
#include "stg/suite.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::size_t tasks = 300;
  std::size_t variant = 4;
  double factor = 2.0;
  bool fine = false;
  std::size_t max_procs = 24;
  CliParser cli("Explore the DVS/PS/processor-count trade-off on a generated graph");
  cli.add_option("tasks", "graph size (number of tasks)", &tasks);
  cli.add_option("variant", "which suite parameter combination to generate", &variant);
  cli.add_option("deadline-factor", "deadline as a multiple of the CPL", &factor);
  cli.add_flag("fine", "use fine-grain cycles-per-unit (3.1e4 instead of 3.1e6)", &fine);
  cli.add_option("max-procs", "processor counts to sweep", &max_procs);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const power::SleepModel sleep(model);

  // ---- The operating points available to the schedulers.
  std::cout << "DVS ladder (70 nm technology):\n";
  TextTable lad_table({"Vdd [V]", "f [GHz]", "f/f_max", "P_active [W]", "P_idle [W]",
                       "E/cycle [nJ]", "breakeven [Mcycles]"});
  for (const auto& lvl : ladder.levels()) {
    const double be = sleep.breakeven_cycles(lvl.idle, lvl.f) / 1e6;
    lad_table.row(fmt_fixed(lvl.vdd.value(), 2), fmt_fixed(lvl.f.value() / 1e9, 3),
                  fmt_fixed(lvl.f_norm, 3), fmt_fixed(lvl.active.total().value(), 3),
                  fmt_fixed(lvl.idle.value(), 3),
                  fmt_fixed(lvl.energy_per_cycle.value() * 1e9, 4), fmt_fixed(be, 2));
  }
  lad_table.print(std::cout);
  std::cout << "critical level: " << fmt_fixed(ladder.critical_level().f_norm, 3)
            << " x f_max at " << ladder.critical_level().vdd.value() << " V\n\n";

  // ---- The instance.
  const auto specs = stg::random_group_specs(tasks, variant + 1);
  const Cycles unit = fine ? stg::kFineGrainCyclesPerUnit : stg::kCoarseGrainCyclesPerUnit;
  const graph::TaskGraph g = graph::scale_weights(stg::generate_random(specs[variant]), unit);
  const Cycles cpl = graph::critical_path_length(g);
  std::cout << "Graph " << g.name() << ": " << g.num_tasks() << " tasks, " << g.num_edges()
            << " edges, parallelism " << fmt_fixed(graph::average_parallelism(g), 2)
            << ", CPL " << fmt_fixed(static_cast<double>(cpl) * 1e3 /
                                      model.max_frequency().value(), 3)
            << " ms at f_max, deadline factor " << factor << "\n\n";

  core::Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline =
      Seconds{static_cast<double>(cpl) / model.max_frequency().value() * factor};

  // ---- The decision surface: energy vs processor count, +-PS.
  const auto plain = core::processor_sweep(prob, max_procs, false);
  const auto with_ps = core::processor_sweep(prob, max_procs, true);
  std::cout << "Energy vs processor count (deadline " << factor << " x CPL):\n";
  TextTable sweep({"procs", "makespan [Mcyc]", "E no-PS [mJ]", "E +PS [mJ]", "PS gain"});
  for (std::size_t i = 0; i < plain.size(); ++i) {
    const auto& a = plain[i];
    const auto& b = with_ps[i];
    if (!a.feasible) {
      sweep.row(a.num_procs, fmt_fixed(static_cast<double>(a.makespan) / 1e6, 2),
                "infeasible", "infeasible", "-");
      continue;
    }
    const double gain = 1.0 - b.energy.value() / a.energy.value();
    sweep.row(a.num_procs, fmt_fixed(static_cast<double>(a.makespan) / 1e6, 2),
              fmt_fixed(a.energy.value() * 1e3, 3), fmt_fixed(b.energy.value() * 1e3, 3),
              fmt_percent(gain));
  }
  sweep.print(std::cout);

  // ---- What the strategies actually choose.
  std::cout << "\nStrategy choices:\n";
  TextTable res({"approach", "energy [mJ]", "procs", "f/f_max", "shutdowns"});
  for (const core::StrategyKind k : core::kAllStrategies) {
    const core::StrategyResult r = core::run_strategy(k, prob);
    if (!r.feasible) {
      res.row(core::to_string(k), "infeasible", "-", "-", "-");
      continue;
    }
    const bool is_limit =
        k == core::StrategyKind::kLimitSf || k == core::StrategyKind::kLimitMf;
    res.row(core::to_string(k), fmt_fixed(r.energy().value() * 1e3, 3),
            is_limit ? std::string("N/A") : std::to_string(r.num_procs),
            fmt_fixed(ladder.level(r.level_index).f_norm, 3), r.breakdown.shutdowns);
  }
  res.print(std::cout);
  return 0;
}
