// Quickstart: the paper's worked example (Figs 4 and 7) end to end.
//
//   1. Build the 5-task graph of Fig 4a.
//   2. Schedule it with LS-EDF and show the Gantt chart (Fig 4b).
//   3. Run all four heuristics and the two lower bounds, and print the
//      energy table with the chosen processor counts and DVS levels.
//
// Build & run:  ./quickstart
#include <iostream>

#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "util/table.hpp"

int main() {
  using namespace lamps;

  // ---- 1. The task graph of Fig 4a (weights in abstract units; one unit
  // is mapped to 3.1e6 cycles = 1 ms at maximum frequency, the paper's
  // coarse-grain scenario).
  graph::TaskGraphBuilder builder("fig4");
  const graph::TaskId t1 = builder.add_task(2, "T1");
  const graph::TaskId t2 = builder.add_task(6, "T2");
  const graph::TaskId t3 = builder.add_task(4, "T3");
  const graph::TaskId t4 = builder.add_task(4, "T4");
  const graph::TaskId t5 = builder.add_task(2, "T5");
  builder.add_edge(t1, t2);
  builder.add_edge(t1, t3);
  builder.add_edge(t2, t5);
  builder.add_edge(t3, t5);
  (void)t4;  // independent task
  const graph::TaskGraph g = graph::scale_weights(builder.build(), 3'100'000);

  const Cycles cpl = graph::critical_path_length(g);
  std::cout << "Task graph: " << g.num_tasks() << " tasks, " << g.num_edges()
            << " edges, total work " << g.total_work() << " cycles, critical path " << cpl
            << " cycles, parallelism " << fmt_fixed(graph::average_parallelism(g), 2)
            << "\n\n";

  // ---- 2. Plain LS-EDF on 3 processors (Fig 4b).
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const Seconds deadline{static_cast<double>(cpl) / model.max_frequency().value() * 1.5};

  const sched::Schedule edf = sched::list_schedule_edf(
      g, 3, static_cast<Cycles>(deadline.value() * model.max_frequency().value()));
  std::cout << "LS-EDF schedule on 3 processors (makespan " << edf.makespan()
            << " cycles):\n";
  sched::GanttOptions gopts;
  gopts.width = 60;
  gopts.horizon = static_cast<Cycles>(static_cast<double>(edf.makespan()) * 1.5);
  sched::write_ascii_gantt(edf, g, std::cout, gopts);

  // ---- 3. All strategies at a 1.5 x CPL deadline.
  core::Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = deadline;

  std::cout << "\nDeadline = 1.5 x CPL = " << deadline.value() * 1e3 << " ms\n\n";
  TextTable table({"approach", "energy [mJ]", "procs", "Vdd [V]", "f/f_max", "shutdowns"});
  for (const core::StrategyKind k : core::kAllStrategies) {
    const core::StrategyResult r = core::run_strategy(k, prob);
    if (!r.feasible) {
      table.row(core::to_string(k), "infeasible", "-", "-", "-", "-");
      continue;
    }
    const auto& lvl = ladder.level(r.level_index);
    const bool is_limit =
        k == core::StrategyKind::kLimitSf || k == core::StrategyKind::kLimitMf;
    table.row(core::to_string(k), fmt_fixed(r.energy().value() * 1e3, 3),
              is_limit ? std::string("N/A") : std::to_string(r.num_procs),
              fmt_fixed(lvl.vdd.value(), 2), fmt_fixed(lvl.f_norm, 3),
              r.breakdown.shutdowns);
  }
  table.print(std::cout);

  // ---- 4. Show the LAMPS schedule (Fig 7a: 2 processors, higher f).
  const core::StrategyResult lamps_r = core::run_strategy(core::StrategyKind::kLamps, prob);
  if (lamps_r.feasible && lamps_r.schedule.has_value()) {
    std::cout << "\nLAMPS chose " << lamps_r.num_procs << " processor(s) at "
              << fmt_fixed(ladder.level(lamps_r.level_index).f_norm, 2)
              << " x f_max (cf. paper Fig 7a):\n";
    sched::write_ascii_gantt(*lamps_r.schedule, g, std::cout, gopts);
  }
  return 0;
}
