// lamps — command-line front end to the library.
//
// Subcommands:
//   lamps ladder                      print the DVS operating points
//   lamps gen [opts]                  generate a task graph, write .stg
//   lamps schedule [opts]             schedule an .stg file, report energy
//   lamps sweep [opts]                energy vs processor count for a file
//   lamps simulate [opts]             execute a plan under exec-time variability
//   lamps robust [opts]               Monte-Carlo robustness report per strategy
//   lamps pareto [opts]               energy/deadline trade-off curve (CSV)
//   lamps serve [opts]                JSON-lines scheduling daemon (docs/serving.md)
//
// Every subcommand accepts --help.  Output is plain text / CSV so the tool
// composes with shell pipelines.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string_view>
#include <vector>

#include "core/lamps.hpp"
#include "core/multifreq.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "power/sleep_model.hpp"
#include "robust/report.hpp"
#include "sched/gantt.hpp"
#include "sched/stats.hpp"
#include "sim/online.hpp"
#include "stg/app_synth.hpp"
#include "stg/format.hpp"
#include "stg/random_gen.hpp"
#include "stg/structured.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"
#include "util/obs_cli.hpp"
#include "util/rng.hpp"
#include "util/signal.hpp"
#include "util/socket.hpp"
#include "util/table.hpp"

namespace {

using namespace lamps;

int cmd_ladder(int argc, const char* const* argv) {
  CliParser cli("Print the discrete DVS operating points of the 70 nm model");
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const power::SleepModel sleep(model);
  TextTable t({"idx", "Vdd [V]", "f [GHz]", "f/f_max", "P_act [W]", "P_idle [W]",
               "E/cyc [nJ]", "breakeven [Mcyc]"});
  for (const auto& lvl : ladder.levels())
    t.row(lvl.index, fmt_fixed(lvl.vdd.value(), 2), fmt_fixed(lvl.f.value() / 1e9, 3),
          fmt_fixed(lvl.f_norm, 3), fmt_fixed(lvl.active.total().value(), 3),
          fmt_fixed(lvl.idle.value(), 3),
          fmt_fixed(lvl.energy_per_cycle.value() * 1e9, 4),
          fmt_fixed(sleep.breakeven_cycles(lvl.idle, lvl.f) / 1e6, 2));
  t.print(std::cout);
  std::cout << "critical level: index " << ladder.critical_level().index << " ("
            << ladder.critical_level().vdd.value() << " V)\n";
  return 0;
}

int cmd_gen(int argc, const char* const* argv) {
  std::string kind = "random";  // random | fpppp | robot | sparse
  std::string method = "layrpred";
  std::size_t tasks = 100;
  std::size_t layers = 0;
  double degree = 2.0;
  std::size_t max_weight = 50;
  std::size_t seed = 1;
  std::string out;
  CliParser cli("Generate a task graph and write it in STG format");
  cli.add_option("kind",
                 "random | fpppp | robot | sparse | gauss | fft | outtree | intree | "
                 "dnc | wavefront",
                 &kind);
  std::size_t size_param = 8;
  cli.add_option("size", "family size parameter (gauss n / fft stages / tree depth / "
                         "wavefront side)", &size_param);
  cli.add_option("method", "random method: sameprob|samepred|layrprob|layrpred", &method);
  cli.add_option("tasks", "number of tasks (random)", &tasks);
  cli.add_option("layers", "layer count, 0 = sqrt(n) (layered methods)", &layers);
  cli.add_option("degree", "average degree", &degree);
  cli.add_option("max-weight", "max task weight (min is 1)", &max_weight);
  cli.add_option("seed", "RNG seed", &seed);
  cli.add_option("out", "output file (default: stdout)", &out);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  graph::TaskGraph g = [&]() -> graph::TaskGraph {
    if (kind == "fpppp") return stg::synthesize_app_graph(stg::fpppp_spec());
    if (kind == "robot") return stg::synthesize_app_graph(stg::robot_spec());
    if (kind == "sparse") return stg::synthesize_app_graph(stg::sparse_spec());
    if (kind == "gauss") return stg::gaussian_elimination(size_param);
    if (kind == "fft") return stg::fft_butterfly(size_param);
    if (kind == "outtree") return stg::out_tree(size_param);
    if (kind == "intree") return stg::in_tree(size_param);
    if (kind == "dnc") return stg::divide_and_conquer(size_param);
    if (kind == "wavefront") return stg::wavefront(size_param, size_param);
    stg::RandomGraphSpec spec;
    spec.name = "cli-random";
    spec.num_tasks = tasks;
    spec.num_layers = layers;
    spec.avg_degree = degree;
    spec.max_weight = max_weight;
    spec.seed = seed;
    if (method == "sameprob")
      spec.method = stg::GenMethod::kSameProb;
    else if (method == "samepred")
      spec.method = stg::GenMethod::kSamePred;
    else if (method == "layrprob")
      spec.method = stg::GenMethod::kLayrProb;
    else if (method == "layrpred")
      spec.method = stg::GenMethod::kLayrPred;
    else
      throw std::invalid_argument("unknown method: " + method);
    return stg::generate_random(spec);
  }();

  std::cerr << "# " << g.name() << ": " << g.num_tasks() << " tasks, " << g.num_edges()
            << " edges, work " << g.total_work() << ", CPL "
            << graph::critical_path_length(g) << ", parallelism "
            << fmt_fixed(graph::average_parallelism(g), 2) << '\n';
  if (out.empty()) {
    stg::write_stg(g, std::cout);
  } else {
    std::ofstream os(out);
    if (!os) {
      std::cerr << "cannot write " << out << '\n';
      return 1;
    }
    stg::write_stg(g, os);
  }
  return 0;
}

struct InstanceOptions {
  std::string file;
  double unit = 3'100'000.0;
  double factor = 2.0;

  void register_flags(CliParser& cli) {
    cli.add_option("file", "input .stg file", &file);
    cli.add_option("unit", "cycles per STG weight unit", &unit);
    cli.add_option("deadline-factor", "deadline as a multiple of the CPL", &factor);
  }

  [[nodiscard]] graph::TaskGraph load() const {
    if (file.empty()) throw std::invalid_argument("--file is required");
    return graph::scale_weights(stg::read_stg_file(file), static_cast<Cycles>(unit));
  }
};

int cmd_schedule(int argc, const char* const* argv) {
  InstanceOptions inst;
  ObsOptions oo;
  bool gantt = false;
  bool csv = false;
  std::string telemetry_out;
  CliParser cli("Schedule an .stg file with every approach and report energy");
  inst.register_flags(cli);
  cli.add_flag("gantt", "print the LAMPS+PS Gantt chart", &gantt);
  cli.add_flag("csv", "emit CSV instead of a table", &csv);
  cli.add_option("telemetry-out",
                 "write per-strategy search telemetry (probed processor counts, "
                 "verdicts, energy breakdown) as JSON", &telemetry_out);
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  return run_observed(oo, "cli/schedule", [&]() -> int {
    const graph::TaskGraph g = inst.load();
    const power::PowerModel model;
    const power::DvsLadder ladder(model);
    core::Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model.max_frequency().value() * inst.factor};

    std::vector<obs::SearchTelemetry> records;

    TextTable table({"approach", "energy [mJ]", "procs", "f/f_max", "shutdowns"});
    if (csv) std::cout << "approach,energy_j,procs,f_norm,shutdowns,feasible\n";
    for (const core::StrategyKind k : core::kAllStrategies) {
      obs::SearchTelemetry tel;
      tel.strategy = core::to_string(k);
      prob.telemetry = telemetry_out.empty() ? nullptr : &tel;
      const core::StrategyResult r = core::run_strategy(k, prob);
      prob.telemetry = nullptr;
      if (!telemetry_out.empty()) {
        if (tel.probes.empty()) core::fill_telemetry_summary(tel, r);
        records.push_back(std::move(tel));
      }
      if (csv) {
        std::cout << core::to_string(k) << ',' << (r.feasible ? r.energy().value() : 0.0)
                  << ',' << r.num_procs << ','
                  << (r.feasible ? ladder.level(r.level_index).f_norm : 0.0) << ','
                  << r.breakdown.shutdowns << ',' << (r.feasible ? 1 : 0) << '\n';
        continue;
      }
      if (!r.feasible) {
        table.row(core::to_string(k), "infeasible", "-", "-", "-");
        continue;
      }
      table.row(core::to_string(k), fmt_fixed(r.energy().value() * 1e3, 3),
                std::to_string(r.num_procs),
                fmt_fixed(ladder.level(r.level_index).f_norm, 3), r.breakdown.shutdowns);
    }
    const core::MultiFreqResult mf = core::lamps_multifreq(prob);
    if (csv) {
      std::cout << "LAMPS+MF," << (mf.feasible ? mf.energy().value() : 0.0) << ','
                << mf.num_procs << ",," << mf.breakdown.shutdowns << ','
                << (mf.feasible ? 1 : 0) << '\n';
    } else {
      if (mf.feasible)
        table.row("LAMPS+MF", fmt_fixed(mf.energy().value() * 1e3, 3),
                  std::to_string(mf.num_procs), "per-task", mf.breakdown.shutdowns);
      table.print(std::cout);
    }

    if (gantt) {
      const core::StrategyResult best =
          core::run_strategy(core::StrategyKind::kLampsPs, prob);
      if (best.feasible && best.schedule.has_value()) {
        sched::GanttOptions gopts;
        gopts.horizon = static_cast<Cycles>(prob.deadline.value() *
                                            ladder.level(best.level_index).f.value());
        sched::write_ascii_gantt(*best.schedule, g, std::cout, gopts);
        sched::print_stats(sched::compute_stats(*best.schedule, g), std::cout);
      }
    }

    if (!telemetry_out.empty()) {
      if (!obs::write_telemetry_file(telemetry_out, records)) {
        std::cerr << "cannot write telemetry " << telemetry_out << '\n';
        return 1;
      }
      std::cerr << "wrote telemetry " << telemetry_out << " (" << records.size()
                << " strategies)\n";
    }
    return 0;
  });
}

int cmd_pareto(int argc, const char* const* argv) {
  InstanceOptions inst;
  double min_factor = 1.05;
  double max_factor = 8.0;
  std::size_t steps = 12;
  CliParser cli(
      "Energy/deadline Pareto curve: sweep the deadline and report each "
      "approach's energy (CSV)");
  inst.register_flags(cli);
  cli.add_option("min-factor", "smallest deadline factor (x CPL)", &min_factor);
  cli.add_option("max-factor", "largest deadline factor (x CPL)", &max_factor);
  cli.add_option("steps", "number of sweep points (log-spaced)", &steps);
  ObsOptions oo;
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;
  if (steps < 2 || min_factor <= 0.0 || max_factor <= min_factor) {
    std::cerr << "invalid sweep range\n";
    return 1;
  }

  return run_observed(oo, "cli/pareto", [&]() -> int {
    const graph::TaskGraph g = inst.load();
    const power::PowerModel model;
    const power::DvsLadder ladder(model);
    const Cycles cpl = graph::critical_path_length(g);

    std::cout << "deadline_factor,deadline_ms";
    for (const core::StrategyKind k : core::kAllStrategies)
      std::cout << ',' << core::to_string(k) << "_mj";
    std::cout << '\n';
    const double ratio = max_factor / min_factor;
    for (std::size_t i = 0; i < steps; ++i) {
      const double factor =
          min_factor * std::pow(ratio, static_cast<double>(i) /
                                           static_cast<double>(steps - 1));
      core::Problem prob;
      prob.graph = &g;
      prob.model = &model;
      prob.ladder = &ladder;
      prob.deadline =
          Seconds{static_cast<double>(cpl) / model.max_frequency().value() * factor};
      std::cout << fmt_fixed(factor, 3) << ','
                << fmt_fixed(prob.deadline.value() * 1e3, 3);
      for (const core::StrategyKind k : core::kAllStrategies) {
        const core::StrategyResult r = core::run_strategy(k, prob);
        std::cout << ',';
        if (r.feasible) std::cout << fmt_fixed(r.energy().value() * 1e3, 4);
      }
      std::cout << '\n';
    }
    return 0;
  });
}

int cmd_simulate(int argc, const char* const* argv) {
  InstanceOptions inst;
  double bcet = 0.7;
  std::size_t runs = 5;
  std::size_t seed = 1;
  CliParser cli(
      "Plan with LAMPS+PS, then execute under BCET/WCET variability with and "
      "without online slack reclamation");
  inst.register_flags(cli);
  cli.add_option("bcet", "BCET/WCET ratio in (0, 1]", &bcet);
  cli.add_option("runs", "number of variability draws", &runs);
  cli.add_option("seed", "base RNG seed", &seed);
  ObsOptions oo;
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  return run_observed(oo, "cli/simulate", [&]() -> int {
    const graph::TaskGraph g = inst.load();
    const power::PowerModel model;
    const power::DvsLadder ladder(model);
    const power::SleepModel sleep(model);
    core::Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model.max_frequency().value() * inst.factor};
    const core::StrategyResult plan = core::lamps_schedule_ps(prob);
    if (!plan.feasible || !plan.schedule.has_value()) {
      std::cerr << "instance infeasible before the deadline\n";
      return 1;
    }
    const auto& lvl = ladder.level(plan.level_index);
    std::cout << "plan: " << plan.num_procs << " procs at " << fmt_fixed(lvl.f_norm, 3)
              << " x f_max, predicted " << fmt_fixed(plan.energy().value() * 1e3, 3)
              << " mJ\n";
    std::cout << "run,seed,static_mj,reclaim_mj,reclaim_vs_static\n";
    for (std::size_t r = 0; r < runs; ++r) {
      sim::OnlineOptions opts;
      opts.bcet_ratio = bcet;
      opts.seed = child_seed(seed, r);
      opts.reclaim = false;
      const auto st = sim::simulate_online(*plan.schedule, g, ladder, lvl, prob.deadline,
                                           sleep, opts);
      opts.reclaim = true;
      const auto rc = sim::simulate_online(*plan.schedule, g, ladder, lvl, prob.deadline,
                                           sleep, opts);
      std::cout << r << ',' << opts.seed << ','
                << fmt_fixed(st.breakdown.total().value() * 1e3, 3) << ','
                << fmt_fixed(rc.breakdown.total().value() * 1e3, 3) << ','
                << fmt_percent(rc.breakdown.total().value() /
                               st.breakdown.total().value())
                << '\n';
    }
    return 0;
  });
}

int cmd_robust(int argc, const char* const* argv) {
  InstanceOptions inst;
  robust::McConfig cfg;
  std::size_t trials = 1000;
  std::size_t seed = 1;
  std::size_t threads = 0;
  std::string jitter_kind = "uniform";
  double wake_latency_us = 0.0;
  std::string csv_path;
  CliParser cli(
      "Monte-Carlo robustness: replay each strategy's schedule under "
      "execution-time jitter, leakage spread and wake faults; report miss "
      "rate and the energy distribution");
  inst.register_flags(cli);
  cli.add_option("trials", "Monte-Carlo trials per strategy", &trials);
  cli.add_option("seed", "master RNG seed (trial t uses child_seed(seed, t))", &seed);
  cli.add_option("threads", "worker threads, 0 = hardware concurrency", &threads);
  cli.add_option("jitter", "execution-time jitter magnitude (relative)",
                 &cfg.perturb.jitter);
  cli.add_option("jitter-kind", "uniform | normal | heavytail", &jitter_kind);
  cli.add_option("leak-spread", "per-processor leakage sigma (relative)",
                 &cfg.perturb.leak_spread);
  cli.add_option("wake-fault-prob", "probability a wakeup misbehaves",
                 &cfg.perturb.wake_fault_prob);
  cli.add_option("wake-fault-scale", "energy/latency multiple of a faulted wakeup",
                 &cfg.perturb.wake_fault_scale);
  cli.add_option("wake-latency", "nominal wake latency [us]", &wake_latency_us);
  cli.add_option("stall-prob", "probability a task stalls transiently",
                 &cfg.perturb.stall_prob);
  cli.add_option("stall-scale", "extra execution of a stalled task (x WCET)",
                 &cfg.perturb.stall_scale);
  cli.add_option("csv", "also write the report to this CSV file", &csv_path);
  ObsOptions oo;
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;
  if (trials == 0) {
    std::cerr << "--trials must be >= 1\n";
    return 1;
  }
  cfg.trials = trials;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.perturb.jitter_kind = robust::jitter_kind_from_name(jitter_kind);
  cfg.perturb.wake_latency = Seconds{wake_latency_us * 1e-6};
  cfg.perturb.validate();

  return run_observed(oo, "cli/robust", [&]() -> int {
    const graph::TaskGraph g = inst.load();
    const power::PowerModel model;
    const power::DvsLadder ladder(model);
    core::Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model.max_frequency().value() * inst.factor};

    const auto rows = robust::evaluate_robustness(prob, core::kAllStrategies, cfg);
    robust::print_robustness_report(std::cout, rows, cfg);
    if (!csv_path.empty()) {
      robust::write_robustness_csv(csv_path, rows);
      std::cout << "wrote " << csv_path << '\n';
    }
    return 0;
  });
}

int cmd_sweep(int argc, const char* const* argv) {
  InstanceOptions inst;
  ObsOptions oo;
  std::size_t max_procs = 16;
  CliParser cli("Energy vs processor count (Fig 6 style) for an .stg file");
  inst.register_flags(cli);
  cli.add_option("max-procs", "largest processor count", &max_procs);
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  return run_observed(oo, "cli/sweep", [&]() -> int {
    const graph::TaskGraph g = inst.load();
    const power::PowerModel model;
    const power::DvsLadder ladder(model);
    core::Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model.max_frequency().value() * inst.factor};

    std::cout << "procs,makespan_cycles,feasible,energy_nops_j,energy_ps_j\n";
    const auto plain = core::processor_sweep(prob, max_procs, false);
    const auto ps = core::processor_sweep(prob, max_procs, true);
    for (std::size_t i = 0; i < plain.size(); ++i) {
      std::cout << plain[i].num_procs << ',' << plain[i].makespan << ','
                << (plain[i].feasible ? 1 : 0) << ',';
      if (plain[i].feasible) std::cout << plain[i].energy.value();
      std::cout << ',';
      if (ps[i].feasible) std::cout << ps[i].energy.value();
      std::cout << '\n';
    }
    return 0;
  });
}

int cmd_serve(int argc, const char* const* argv) {
  std::size_t port = 0;
  std::size_t threads = 0;
  std::size_t max_pending = 0;
  std::size_t cache_capacity = 512;
  std::size_t bank_capacity = 128;
  double max_runtime_s = 0.0;
  ObsOptions oo;
  CliParser cli(
      "Run the scheduling daemon: JSON-lines requests over TCP, answered "
      "from a shared worker pool with a single-flight result cache; "
      "SIGTERM/SIGINT drain gracefully (docs/serving.md)");
  cli.add_option("port", "TCP port, 0 = ephemeral (printed on stdout)", &port);
  cli.add_option("threads", "compute workers, 0 = hardware concurrency", &threads);
  cli.add_option("max-pending",
                 "admission bound before \"overloaded\" responses, 0 = 4x threads",
                 &max_pending);
  cli.add_option("cache-capacity", "completed-result LRU entries", &cache_capacity);
  cli.add_option("bank-capacity",
                 "schedule-bank stores for incremental rescheduling across "
                 "deadlines of one graph, 0 = disable",
                 &bank_capacity);
  cli.add_option("max-runtime-s",
                 "self-drain after this many seconds, 0 = run until signalled "
                 "(CI smoke harnesses)", &max_runtime_s);
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;
  if (port > 65535) {
    std::cerr << "--port must be <= 65535\n";
    return 1;
  }

  return run_observed(oo, "cli/serve", [&]() -> int {
    const int signal_fd = install_drain_signal_handlers();
    net::ServerConfig cfg;
    cfg.port = static_cast<std::uint16_t>(port);
    cfg.threads = threads;
    cfg.max_pending = max_pending;
    cfg.cache_capacity = cache_capacity;
    cfg.bank_capacity = bank_capacity;
    net::Server server(cfg);
    server.start();
    // Scripted callers parse this line for the ephemeral port.
    std::cout << "lamps serve: listening on 127.0.0.1:" << server.port() << std::endl;

    const auto started = std::chrono::steady_clock::now();
    while (!drain_signal_pending()) {
      (void)poll_readable(signal_fd, -1, 250);
      if (max_runtime_s > 0.0 &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                  .count() >= max_runtime_s) {
        request_drain_signal();
      }
    }
    std::cout << "lamps serve: draining (in-flight requests finish, new "
                 "connections are refused)"
              << std::endl;
    server.request_drain();
    server.wait();

    const auto& reg = obs::Registry::global();
    std::cout << "lamps serve: done — " << reg.counter_value("serve.requests_total")
              << " requests (" << reg.counter_value("serve.requests_ok") << " ok, "
              << reg.counter_value("serve.cache_hits") << " cache hits, "
              << reg.counter_value("serve.singleflight_hits") << " single-flight joins, "
              << reg.counter_value("serve.requests_overloaded") << " shed)"
              << std::endl;
    return 0;
  });
}

void print_root_usage(std::ostream& os) {
  os << "lamps — leakage-aware multiprocessor scheduling toolkit\n\n"
        "Usage: lamps <command> [options]\n\n"
        "Commands:\n"
        "  ladder     print the DVS operating points\n"
        "  gen        generate a task graph, write .stg\n"
        "  schedule   schedule an .stg file, report energy per approach\n"
        "  sweep      energy vs processor count for an .stg file\n"
        "  simulate   execute a LAMPS+PS plan under execution-time variability\n"
        "  robust     Monte-Carlo robustness report (jitter/leakage/wake faults)\n"
        "  pareto     energy/deadline trade-off curve for an .stg file\n"
        "  serve      JSON-lines scheduling daemon over TCP (docs/serving.md)\n\n"
        "Run 'lamps <command> --help' for the command's options.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_root_usage(std::cerr);
    return 1;
  }
  const std::string_view cmd = argv[1];
  try {
    if (cmd == "ladder") return cmd_ladder(argc - 1, argv + 1);
    if (cmd == "gen") return cmd_gen(argc - 1, argv + 1);
    if (cmd == "schedule") return cmd_schedule(argc - 1, argv + 1);
    if (cmd == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (cmd == "simulate") return cmd_simulate(argc - 1, argv + 1);
    if (cmd == "robust") return cmd_robust(argc - 1, argv + 1);
    if (cmd == "pareto") return cmd_pareto(argc - 1, argv + 1);
    if (cmd == "serve") return cmd_serve(argc - 1, argv + 1);
    if (cmd == "--help" || cmd == "-h") {
      print_root_usage(std::cout);
      return 0;
    }
  } catch (const lamps::Error& e) {
    // Typed taxonomy errors map to documented exit codes (docs/robustness.md).
    std::cerr << "error: " << e.what() << '\n';
    return lamps::exit_code_for(e.code());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  std::cerr << "unknown command: " << cmd << "\n\n";
  print_root_usage(std::cerr);
  return 1;
}
