// lamps — command-line front end to the library.
//
// Subcommands:
//   lamps ladder                      print the DVS operating points
//   lamps gen [opts]                  generate a task graph, write .stg
//   lamps schedule [opts]             schedule an .stg file, report energy
//   lamps sweep [opts]                energy vs processor count for a file
//   lamps simulate [opts]             execute a plan under exec-time variability
//   lamps robust [opts]               Monte-Carlo robustness report per strategy
//   lamps pareto [opts]               energy/deadline trade-off curve (CSV)
//   lamps serve [opts]                JSON-lines scheduling daemon (docs/serving.md)
//   lamps top [opts]                  live dashboard over a running daemon's
//                                     admin endpoints (docs/observability.md)
//
// Every subcommand accepts --help.  Output is plain text / CSV so the tool
// composes with shell pipelines.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "core/lamps.hpp"
#include "core/multifreq.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "net/jsonv.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "power/sleep_model.hpp"
#include "robust/report.hpp"
#include "sched/gantt.hpp"
#include "sched/stats.hpp"
#include "sim/online.hpp"
#include "stg/app_synth.hpp"
#include "stg/format.hpp"
#include "stg/random_gen.hpp"
#include "stg/structured.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"
#include "util/faultinject.hpp"
#include "util/obs_cli.hpp"
#include "util/rng.hpp"
#include "util/signal.hpp"
#include "util/socket.hpp"
#include "util/table.hpp"

namespace {

using namespace lamps;

int cmd_ladder(int argc, const char* const* argv) {
  CliParser cli("Print the discrete DVS operating points of the 70 nm model");
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const power::SleepModel sleep(model);
  TextTable t({"idx", "Vdd [V]", "f [GHz]", "f/f_max", "P_act [W]", "P_idle [W]",
               "E/cyc [nJ]", "breakeven [Mcyc]"});
  for (const auto& lvl : ladder.levels())
    t.row(lvl.index, fmt_fixed(lvl.vdd.value(), 2), fmt_fixed(lvl.f.value() / 1e9, 3),
          fmt_fixed(lvl.f_norm, 3), fmt_fixed(lvl.active.total().value(), 3),
          fmt_fixed(lvl.idle.value(), 3),
          fmt_fixed(lvl.energy_per_cycle.value() * 1e9, 4),
          fmt_fixed(sleep.breakeven_cycles(lvl.idle, lvl.f) / 1e6, 2));
  t.print(std::cout);
  std::cout << "critical level: index " << ladder.critical_level().index << " ("
            << ladder.critical_level().vdd.value() << " V)\n";
  return 0;
}

int cmd_gen(int argc, const char* const* argv) {
  std::string kind = "random";  // random | fpppp | robot | sparse
  std::string method = "layrpred";
  std::size_t tasks = 100;
  std::size_t layers = 0;
  double degree = 2.0;
  std::size_t max_weight = 50;
  std::size_t seed = 1;
  std::string out;
  CliParser cli("Generate a task graph and write it in STG format");
  cli.add_option("kind",
                 "random | fpppp | robot | sparse | gauss | fft | outtree | intree | "
                 "dnc | wavefront",
                 &kind);
  std::size_t size_param = 8;
  cli.add_option("size", "family size parameter (gauss n / fft stages / tree depth / "
                         "wavefront side)", &size_param);
  cli.add_option("method", "random method: sameprob|samepred|layrprob|layrpred", &method);
  cli.add_option("tasks", "number of tasks (random)", &tasks);
  cli.add_option("layers", "layer count, 0 = sqrt(n) (layered methods)", &layers);
  cli.add_option("degree", "average degree", &degree);
  cli.add_option("max-weight", "max task weight (min is 1)", &max_weight);
  cli.add_option("seed", "RNG seed", &seed);
  cli.add_option("out", "output file (default: stdout)", &out);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  graph::TaskGraph g = [&]() -> graph::TaskGraph {
    if (kind == "fpppp") return stg::synthesize_app_graph(stg::fpppp_spec());
    if (kind == "robot") return stg::synthesize_app_graph(stg::robot_spec());
    if (kind == "sparse") return stg::synthesize_app_graph(stg::sparse_spec());
    if (kind == "gauss") return stg::gaussian_elimination(size_param);
    if (kind == "fft") return stg::fft_butterfly(size_param);
    if (kind == "outtree") return stg::out_tree(size_param);
    if (kind == "intree") return stg::in_tree(size_param);
    if (kind == "dnc") return stg::divide_and_conquer(size_param);
    if (kind == "wavefront") return stg::wavefront(size_param, size_param);
    stg::RandomGraphSpec spec;
    spec.name = "cli-random";
    spec.num_tasks = tasks;
    spec.num_layers = layers;
    spec.avg_degree = degree;
    spec.max_weight = max_weight;
    spec.seed = seed;
    if (method == "sameprob")
      spec.method = stg::GenMethod::kSameProb;
    else if (method == "samepred")
      spec.method = stg::GenMethod::kSamePred;
    else if (method == "layrprob")
      spec.method = stg::GenMethod::kLayrProb;
    else if (method == "layrpred")
      spec.method = stg::GenMethod::kLayrPred;
    else
      throw std::invalid_argument("unknown method: " + method);
    return stg::generate_random(spec);
  }();

  std::cerr << "# " << g.name() << ": " << g.num_tasks() << " tasks, " << g.num_edges()
            << " edges, work " << g.total_work() << ", CPL "
            << graph::critical_path_length(g) << ", parallelism "
            << fmt_fixed(graph::average_parallelism(g), 2) << '\n';
  if (out.empty()) {
    stg::write_stg(g, std::cout);
  } else {
    std::ofstream os(out);
    if (!os) {
      std::cerr << "cannot write " << out << '\n';
      return 1;
    }
    stg::write_stg(g, os);
  }
  return 0;
}

struct InstanceOptions {
  std::string file;
  double unit = 3'100'000.0;
  double factor = 2.0;

  void register_flags(CliParser& cli) {
    cli.add_option("file", "input .stg file", &file);
    cli.add_option("unit", "cycles per STG weight unit", &unit);
    cli.add_option("deadline-factor", "deadline as a multiple of the CPL", &factor);
  }

  [[nodiscard]] graph::TaskGraph load() const {
    if (file.empty()) throw std::invalid_argument("--file is required");
    return graph::scale_weights(stg::read_stg_file(file), static_cast<Cycles>(unit));
  }
};

int cmd_schedule(int argc, const char* const* argv) {
  InstanceOptions inst;
  ObsOptions oo;
  bool gantt = false;
  bool csv = false;
  std::string telemetry_out;
  CliParser cli("Schedule an .stg file with every approach and report energy");
  inst.register_flags(cli);
  cli.add_flag("gantt", "print the LAMPS+PS Gantt chart", &gantt);
  cli.add_flag("csv", "emit CSV instead of a table", &csv);
  cli.add_option("telemetry-out",
                 "write per-strategy search telemetry (probed processor counts, "
                 "verdicts, energy breakdown) as JSON", &telemetry_out);
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  return run_observed(oo, "cli/schedule", [&]() -> int {
    const graph::TaskGraph g = inst.load();
    const power::PowerModel model;
    const power::DvsLadder ladder(model);
    core::Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model.max_frequency().value() * inst.factor};

    std::vector<obs::SearchTelemetry> records;

    TextTable table({"approach", "energy [mJ]", "procs", "f/f_max", "shutdowns"});
    if (csv) std::cout << "approach,energy_j,procs,f_norm,shutdowns,feasible\n";
    for (const core::StrategyKind k : core::kAllStrategies) {
      obs::SearchTelemetry tel;
      tel.strategy = core::to_string(k);
      prob.telemetry = telemetry_out.empty() ? nullptr : &tel;
      const core::StrategyResult r = core::run_strategy(k, prob);
      prob.telemetry = nullptr;
      if (!telemetry_out.empty()) {
        if (tel.probes.empty()) core::fill_telemetry_summary(tel, r);
        records.push_back(std::move(tel));
      }
      if (csv) {
        std::cout << core::to_string(k) << ',' << (r.feasible ? r.energy().value() : 0.0)
                  << ',' << r.num_procs << ','
                  << (r.feasible ? ladder.level(r.level_index).f_norm : 0.0) << ','
                  << r.breakdown.shutdowns << ',' << (r.feasible ? 1 : 0) << '\n';
        continue;
      }
      if (!r.feasible) {
        table.row(core::to_string(k), "infeasible", "-", "-", "-");
        continue;
      }
      table.row(core::to_string(k), fmt_fixed(r.energy().value() * 1e3, 3),
                std::to_string(r.num_procs),
                fmt_fixed(ladder.level(r.level_index).f_norm, 3), r.breakdown.shutdowns);
    }
    const core::MultiFreqResult mf = core::lamps_multifreq(prob);
    if (csv) {
      std::cout << "LAMPS+MF," << (mf.feasible ? mf.energy().value() : 0.0) << ','
                << mf.num_procs << ",," << mf.breakdown.shutdowns << ','
                << (mf.feasible ? 1 : 0) << '\n';
    } else {
      if (mf.feasible)
        table.row("LAMPS+MF", fmt_fixed(mf.energy().value() * 1e3, 3),
                  std::to_string(mf.num_procs), "per-task", mf.breakdown.shutdowns);
      table.print(std::cout);
    }

    if (gantt) {
      const core::StrategyResult best =
          core::run_strategy(core::StrategyKind::kLampsPs, prob);
      if (best.feasible && best.schedule.has_value()) {
        sched::GanttOptions gopts;
        gopts.horizon = static_cast<Cycles>(prob.deadline.value() *
                                            ladder.level(best.level_index).f.value());
        sched::write_ascii_gantt(*best.schedule, g, std::cout, gopts);
        sched::print_stats(sched::compute_stats(*best.schedule, g), std::cout);
      }
    }

    if (!telemetry_out.empty()) {
      if (!obs::write_telemetry_file(telemetry_out, records)) {
        std::cerr << "cannot write telemetry " << telemetry_out << '\n';
        return 1;
      }
      std::cerr << "wrote telemetry " << telemetry_out << " (" << records.size()
                << " strategies)\n";
    }
    return 0;
  });
}

int cmd_pareto(int argc, const char* const* argv) {
  InstanceOptions inst;
  double min_factor = 1.05;
  double max_factor = 8.0;
  std::size_t steps = 12;
  CliParser cli(
      "Energy/deadline Pareto curve: sweep the deadline and report each "
      "approach's energy (CSV)");
  inst.register_flags(cli);
  cli.add_option("min-factor", "smallest deadline factor (x CPL)", &min_factor);
  cli.add_option("max-factor", "largest deadline factor (x CPL)", &max_factor);
  cli.add_option("steps", "number of sweep points (log-spaced)", &steps);
  ObsOptions oo;
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;
  if (steps < 2 || min_factor <= 0.0 || max_factor <= min_factor) {
    std::cerr << "invalid sweep range\n";
    return 1;
  }

  return run_observed(oo, "cli/pareto", [&]() -> int {
    const graph::TaskGraph g = inst.load();
    const power::PowerModel model;
    const power::DvsLadder ladder(model);
    const Cycles cpl = graph::critical_path_length(g);

    std::cout << "deadline_factor,deadline_ms";
    for (const core::StrategyKind k : core::kAllStrategies)
      std::cout << ',' << core::to_string(k) << "_mj";
    std::cout << '\n';
    const double ratio = max_factor / min_factor;
    for (std::size_t i = 0; i < steps; ++i) {
      const double factor =
          min_factor * std::pow(ratio, static_cast<double>(i) /
                                           static_cast<double>(steps - 1));
      core::Problem prob;
      prob.graph = &g;
      prob.model = &model;
      prob.ladder = &ladder;
      prob.deadline =
          Seconds{static_cast<double>(cpl) / model.max_frequency().value() * factor};
      std::cout << fmt_fixed(factor, 3) << ','
                << fmt_fixed(prob.deadline.value() * 1e3, 3);
      for (const core::StrategyKind k : core::kAllStrategies) {
        const core::StrategyResult r = core::run_strategy(k, prob);
        std::cout << ',';
        if (r.feasible) std::cout << fmt_fixed(r.energy().value() * 1e3, 4);
      }
      std::cout << '\n';
    }
    return 0;
  });
}

int cmd_simulate(int argc, const char* const* argv) {
  InstanceOptions inst;
  double bcet = 0.7;
  std::size_t runs = 5;
  std::size_t seed = 1;
  CliParser cli(
      "Plan with LAMPS+PS, then execute under BCET/WCET variability with and "
      "without online slack reclamation");
  inst.register_flags(cli);
  cli.add_option("bcet", "BCET/WCET ratio in (0, 1]", &bcet);
  cli.add_option("runs", "number of variability draws", &runs);
  cli.add_option("seed", "base RNG seed", &seed);
  ObsOptions oo;
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  return run_observed(oo, "cli/simulate", [&]() -> int {
    const graph::TaskGraph g = inst.load();
    const power::PowerModel model;
    const power::DvsLadder ladder(model);
    const power::SleepModel sleep(model);
    core::Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model.max_frequency().value() * inst.factor};
    const core::StrategyResult plan = core::lamps_schedule_ps(prob);
    if (!plan.feasible || !plan.schedule.has_value()) {
      std::cerr << "instance infeasible before the deadline\n";
      return 1;
    }
    const auto& lvl = ladder.level(plan.level_index);
    std::cout << "plan: " << plan.num_procs << " procs at " << fmt_fixed(lvl.f_norm, 3)
              << " x f_max, predicted " << fmt_fixed(plan.energy().value() * 1e3, 3)
              << " mJ\n";
    std::cout << "run,seed,static_mj,reclaim_mj,reclaim_vs_static\n";
    for (std::size_t r = 0; r < runs; ++r) {
      sim::OnlineOptions opts;
      opts.bcet_ratio = bcet;
      opts.seed = child_seed(seed, r);
      opts.reclaim = false;
      const auto st = sim::simulate_online(*plan.schedule, g, ladder, lvl, prob.deadline,
                                           sleep, opts);
      opts.reclaim = true;
      const auto rc = sim::simulate_online(*plan.schedule, g, ladder, lvl, prob.deadline,
                                           sleep, opts);
      std::cout << r << ',' << opts.seed << ','
                << fmt_fixed(st.breakdown.total().value() * 1e3, 3) << ','
                << fmt_fixed(rc.breakdown.total().value() * 1e3, 3) << ','
                << fmt_percent(rc.breakdown.total().value() /
                               st.breakdown.total().value())
                << '\n';
    }
    return 0;
  });
}

int cmd_robust(int argc, const char* const* argv) {
  InstanceOptions inst;
  robust::McConfig cfg;
  std::size_t trials = 1000;
  std::size_t seed = 1;
  std::size_t threads = 0;
  std::string jitter_kind = "uniform";
  double wake_latency_us = 0.0;
  std::string csv_path;
  CliParser cli(
      "Monte-Carlo robustness: replay each strategy's schedule under "
      "execution-time jitter, leakage spread and wake faults; report miss "
      "rate and the energy distribution");
  inst.register_flags(cli);
  cli.add_option("trials", "Monte-Carlo trials per strategy", &trials);
  cli.add_option("seed", "master RNG seed (trial t uses child_seed(seed, t))", &seed);
  cli.add_option("threads", "worker threads, 0 = hardware concurrency", &threads);
  cli.add_option("jitter", "execution-time jitter magnitude (relative)",
                 &cfg.perturb.jitter);
  cli.add_option("jitter-kind", "uniform | normal | heavytail", &jitter_kind);
  cli.add_option("leak-spread", "per-processor leakage sigma (relative)",
                 &cfg.perturb.leak_spread);
  cli.add_option("wake-fault-prob", "probability a wakeup misbehaves",
                 &cfg.perturb.wake_fault_prob);
  cli.add_option("wake-fault-scale", "energy/latency multiple of a faulted wakeup",
                 &cfg.perturb.wake_fault_scale);
  cli.add_option("wake-latency", "nominal wake latency [us]", &wake_latency_us);
  cli.add_option("stall-prob", "probability a task stalls transiently",
                 &cfg.perturb.stall_prob);
  cli.add_option("stall-scale", "extra execution of a stalled task (x WCET)",
                 &cfg.perturb.stall_scale);
  cli.add_option("csv", "also write the report to this CSV file", &csv_path);
  ObsOptions oo;
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;
  if (trials == 0) {
    std::cerr << "--trials must be >= 1\n";
    return 1;
  }
  cfg.trials = trials;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.perturb.jitter_kind = robust::jitter_kind_from_name(jitter_kind);
  cfg.perturb.wake_latency = Seconds{wake_latency_us * 1e-6};
  cfg.perturb.validate();

  return run_observed(oo, "cli/robust", [&]() -> int {
    const graph::TaskGraph g = inst.load();
    const power::PowerModel model;
    const power::DvsLadder ladder(model);
    core::Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model.max_frequency().value() * inst.factor};

    const auto rows = robust::evaluate_robustness(prob, core::kAllStrategies, cfg);
    robust::print_robustness_report(std::cout, rows, cfg);
    if (!csv_path.empty()) {
      robust::write_robustness_csv(csv_path, rows);
      std::cout << "wrote " << csv_path << '\n';
    }
    return 0;
  });
}

int cmd_sweep(int argc, const char* const* argv) {
  InstanceOptions inst;
  ObsOptions oo;
  std::size_t max_procs = 16;
  CliParser cli("Energy vs processor count (Fig 6 style) for an .stg file");
  inst.register_flags(cli);
  cli.add_option("max-procs", "largest processor count", &max_procs);
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  return run_observed(oo, "cli/sweep", [&]() -> int {
    const graph::TaskGraph g = inst.load();
    const power::PowerModel model;
    const power::DvsLadder ladder(model);
    core::Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model.max_frequency().value() * inst.factor};

    std::cout << "procs,makespan_cycles,feasible,energy_nops_j,energy_ps_j\n";
    const auto plain = core::processor_sweep(prob, max_procs, false);
    const auto ps = core::processor_sweep(prob, max_procs, true);
    for (std::size_t i = 0; i < plain.size(); ++i) {
      std::cout << plain[i].num_procs << ',' << plain[i].makespan << ','
                << (plain[i].feasible ? 1 : 0) << ',';
      if (plain[i].feasible) std::cout << plain[i].energy.value();
      std::cout << ',';
      if (ps[i].feasible) std::cout << ps[i].energy.value();
      std::cout << '\n';
    }
    return 0;
  });
}

int cmd_serve(int argc, const char* const* argv) {
  std::size_t port = 0;
  std::size_t threads = 0;
  std::size_t max_pending = 0;
  std::size_t cache_capacity = 512;
  std::size_t bank_capacity = 128;
  std::size_t flight_capacity = 1024;
  double slow_ms = 1000.0;
  double metrics_interval = 0.0;
  std::string metrics_jsonl;
  double max_runtime_s = 0.0;
  double read_timeout_ms = 30'000.0;
  double idle_timeout_s = 300.0;
  std::size_t max_request_bytes = 32ull << 20;
  std::size_t max_write_queue = 256;
  double write_timeout_ms = 30'000.0;
  double default_deadline_ms = 0.0;
  std::size_t listen_backlog = 1024;
  std::size_t sndbuf_bytes = 0;
  std::string chaos_spec;
  ObsOptions oo;
  CliParser cli(
      "Run the scheduling daemon: JSON-lines requests over TCP on a single "
      "epoll event loop, answered from a shared worker pool with a "
      "single-flight result cache; SIGTERM/SIGINT drain gracefully "
      "(docs/serving.md)");
  cli.add_option("port", "TCP port, 0 = ephemeral (printed on stdout)", &port);
  cli.add_option("threads", "compute workers, 0 = hardware concurrency", &threads);
  cli.add_option("max-pending",
                 "admission bound before \"overloaded\" responses, 0 = 4x threads",
                 &max_pending);
  cli.add_option("cache-capacity", "completed-result LRU entries", &cache_capacity);
  cli.add_option("bank-capacity",
                 "schedule-bank stores for incremental rescheduling across "
                 "deadlines of one graph, 0 = disable",
                 &bank_capacity);
  cli.add_option("flight-capacity",
                 "flight-recorder ring slots (per-request phase timelines, "
                 "served by the flightz admin query)", &flight_capacity);
  cli.add_option("slow-ms",
                 "promote requests slower than this to warn-level span dumps, "
                 "0 = disable", &slow_ms);
  cli.add_option("metrics-interval",
                 "append a metrics snapshot to --metrics-jsonl every this many "
                 "seconds, 0 = off", &metrics_interval);
  cli.add_option("metrics-jsonl", "metrics time-series file (JSON lines, appended)",
                 &metrics_jsonl);
  cli.add_option("max-runtime-s",
                 "self-drain after this many seconds, 0 = run until signalled "
                 "(CI smoke harnesses)", &max_runtime_s);
  cli.add_option("read-timeout-ms",
                 "close connections whose request line stalls mid-line this "
                 "long, 0 = off", &read_timeout_ms);
  cli.add_option("idle-timeout-s",
                 "reap connections idle (no complete line) this long, 0 = off",
                 &idle_timeout_s);
  cli.add_option("max-request-bytes",
                 "per-line byte cap; oversize lines get a typed \"too_large\" "
                 "error, 0 = unbounded", &max_request_bytes);
  cli.add_option("max-write-queue",
                 "per-connection admitted-but-unwritten response bound before "
                 "disconnect, 0 = unbounded", &max_write_queue);
  cli.add_option("write-timeout-ms",
                 "disconnect peers that accept no response bytes for this "
                 "long, 0 = off", &write_timeout_ms);
  cli.add_option("default-deadline-ms",
                 "wall-clock budget for requests without \"deadline_ms\", "
                 "0 = none", &default_deadline_ms);
  cli.add_option("listen-backlog",
                 "listen(2) queue depth absorbing event-loop accept bursts",
                 &listen_backlog);
  cli.add_option("sndbuf-bytes",
                 "SO_SNDBUF for accepted sockets, 0 = kernel default",
                 &sndbuf_bytes);
  cli.add_option("chaos-spec",
                 "deterministic fault injection, e.g. "
                 "\"seed=42,short_read=0.3,write_reset=0.05\" (falls back to "
                 "the LAMPS_CHAOS env var; docs/serving.md)", &chaos_spec);
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;
  if (port > 65535) {
    std::cerr << "--port must be <= 65535\n";
    return 1;
  }

  return run_observed(oo, "cli/serve", [&]() -> int {
    const int signal_fd = install_drain_signal_handlers();
    net::ServerConfig cfg;
    cfg.port = static_cast<std::uint16_t>(port);
    cfg.threads = threads;
    cfg.max_pending = max_pending;
    cfg.cache_capacity = cache_capacity;
    cfg.bank_capacity = bank_capacity;
    cfg.flight_capacity = flight_capacity;
    cfg.slow_request_s = slow_ms / 1e3;
    cfg.metrics_interval_s = metrics_interval;
    cfg.metrics_jsonl = metrics_jsonl;
    cfg.read_timeout_s = read_timeout_ms / 1e3;
    cfg.idle_timeout_s = idle_timeout_s;
    cfg.max_request_bytes = max_request_bytes;
    cfg.max_write_queue = max_write_queue;
    cfg.write_timeout_s = write_timeout_ms / 1e3;
    cfg.default_deadline_ms = default_deadline_ms;
    cfg.listen_backlog = static_cast<int>(listen_backlog);
    cfg.sndbuf_bytes = static_cast<int>(sndbuf_bytes);
    if (chaos_spec.empty()) {
      if (const char* env = std::getenv("LAMPS_CHAOS"); env != nullptr)
        chaos_spec = env;
    }
    if (!chaos_spec.empty())
      cfg.chaos = std::make_shared<FaultInjector>(parse_fault_spec(chaos_spec));
    net::Server server(cfg);
    server.start();
    // Scripted callers parse this line for the ephemeral port.
    std::cout << "lamps serve: listening on 127.0.0.1:" << server.port() << std::endl;

    const auto started = std::chrono::steady_clock::now();
    while (!drain_signal_pending()) {
      (void)poll_readable(signal_fd, -1, 250);
      if (max_runtime_s > 0.0 &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                  .count() >= max_runtime_s) {
        request_drain_signal();
      }
    }
    std::cout << "lamps serve: draining (in-flight requests finish, new "
                 "connections are refused)"
              << std::endl;
    server.request_drain();
    server.wait();

    const auto& reg = obs::Registry::global();
    std::cout << "lamps serve: done — " << reg.counter_value("serve.requests_total")
              << " requests (" << reg.counter_value("serve.requests_ok") << " ok, "
              << reg.counter_value("serve.cache_hits") << " cache hits, "
              << reg.counter_value("serve.singleflight_hits") << " single-flight joins, "
              << reg.counter_value("serve.requests_overloaded") << " shed)"
              << std::endl;
    return 0;
  });
}

// ---------------------------------------------------------------------------
// lamps top — terminal dashboard over a running daemon's admin lane.

/// One scraped histogram: parallel per-bucket upper bounds and counts
/// (counts are per-bucket, not cumulative, matching the registry export).
struct HistSnap {
  std::vector<double> le;  ///< +inf for the overflow bucket
  std::vector<std::uint64_t> counts;
  std::uint64_t total{0};
};

/// Everything one top sample needs, pulled from statsz in one scrape.
struct TopSample {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistSnap> hists;
  double uptime_s{0.0};
  bool draining{false};
  std::chrono::steady_clock::time_point taken;
  double scrape_rtt_ms{0.0};
};

net::JsonValue admin_query(const Socket& sock, LineReader& reader,
                           const std::string& line) {
  if (!sock.send_all(line + "\n"))
    throw InternalError(ErrorCode::kIo, "server closed the connection mid-query");
  std::string resp;
  if (reader.read_line(resp) != LineReader::Status::kLine)
    throw InternalError(ErrorCode::kIo, "no response to admin query '" + line + "'");
  net::JsonValue doc = net::JsonValue::parse(resp);
  const net::JsonValue* ok = doc.get("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool())
    throw InternalError(ErrorCode::kIo, "admin query '" + line + "' failed: " + resp);
  return doc;
}

TopSample scrape_statsz(const Socket& sock, LineReader& reader) {
  TopSample s;
  const auto t0 = std::chrono::steady_clock::now();
  const net::JsonValue statsz = admin_query(sock, reader, "statsz");
  s.scrape_rtt_ms =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() * 1e3;
  s.taken = t0;
  s.uptime_s = statsz.get_number("uptime_s", 0.0);
  if (const net::JsonValue* d = statsz.get("draining"); d != nullptr && d->is_bool())
    s.draining = d->as_bool();

  const net::JsonValue* metrics = statsz.get("metrics");
  if (metrics == nullptr) return s;
  if (const net::JsonValue* counters = metrics->get("counters");
      counters != nullptr && counters->is_object()) {
    // The object accessor walks pairs; reparse via known serve.* names is
    // fragile, so lift everything through get() on a fixed name list plus
    // the full object when available.
    for (const char* name :
         {"serve.requests_total", "serve.requests_ok", "serve.requests_bad_request",
          "serve.requests_overloaded", "serve.requests_internal_error",
          "serve.requests_computed", "serve.cache_hits", "serve.cache_misses",
          "serve.singleflight_hits", "serve.slow_requests", "serve.admin_requests",
          "serve.connections_total", "flight.dropped_records"}) {
      if (const net::JsonValue* v = counters->get(name); v != nullptr && v->is_number())
        s.counters[name] = static_cast<std::uint64_t>(v->as_number());
    }
  }
  if (const net::JsonValue* hists = metrics->get("histograms");
      hists != nullptr && hists->is_object()) {
    for (const char* name : {"serve.request_seconds", "serve.queue_seconds",
                             "serve.compute_seconds", "serve.write_seconds"}) {
      const net::JsonValue* h = hists->get(name);
      if (h == nullptr) continue;
      HistSnap snap;
      snap.total = static_cast<std::uint64_t>(h->get_number("count", 0.0));
      if (const net::JsonValue* buckets = h->get("buckets");
          buckets != nullptr && buckets->is_array()) {
        for (const net::JsonValue& b : buckets->items()) {
          const net::JsonValue* le = b.get("le");
          snap.le.push_back(le != nullptr && le->is_number()
                                ? le->as_number()
                                : std::numeric_limits<double>::infinity());
          snap.counts.push_back(static_cast<std::uint64_t>(b.get_number("count", 0.0)));
        }
      }
      s.hists[name] = std::move(snap);
    }
  }
  return s;
}

std::uint64_t counter_delta(const TopSample& cur, const TopSample& prev,
                            const std::string& name) {
  const auto c = cur.counters.find(name);
  if (c == cur.counters.end()) return 0;
  const auto p = prev.counters.find(name);
  const std::uint64_t before = p == prev.counters.end() ? 0 : p->second;
  return c->second > before ? c->second - before : 0;
}

/// Upper-bound estimate of the q-quantile of the observations that landed
/// between two scrapes of one histogram (bucket-wise count deltas).
double delta_quantile(const HistSnap& cur, const HistSnap& prev, double q) {
  if (cur.le.empty()) return 0.0;
  std::uint64_t n = 0;
  std::vector<std::uint64_t> delta(cur.le.size(), 0);
  for (std::size_t i = 0; i < cur.le.size(); ++i) {
    const std::uint64_t before = i < prev.counts.size() ? prev.counts[i] : 0;
    if (cur.counts[i] > before) delta[i] = cur.counts[i] - before;
    n += delta[i];
  }
  if (n == 0) return 0.0;
  const auto target =
      static_cast<std::uint64_t>(std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(n)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    cum += delta[i];
    if (cum >= target) return cur.le[i];
  }
  return cur.le.back();
}

std::string fmt_ms(double seconds) {
  std::ostringstream ss;
  if (std::isinf(seconds)) return ">5s";
  ss << std::fixed << std::setprecision(seconds * 1e3 < 10 ? 2 : 1) << seconds * 1e3;
  return ss.str();
}

std::string phase_quantiles(const TopSample& cur, const TopSample& prev,
                            const std::string& hist) {
  const auto c = cur.hists.find(hist);
  if (c == cur.hists.end()) return "-";
  static const HistSnap kEmpty;
  const auto p = prev.hists.find(hist);
  const HistSnap& before = p == prev.hists.end() ? kEmpty : p->second;
  return fmt_ms(delta_quantile(c->second, before, 0.50)) + "/" +
         fmt_ms(delta_quantile(c->second, before, 0.95)) + "/" +
         fmt_ms(delta_quantile(c->second, before, 0.99));
}

void print_top_sample(std::ostream& os, const std::string& host, std::size_t port,
                      const TopSample& cur, const TopSample& prev,
                      const net::JsonValue& healthz, const net::JsonValue& cachez,
                      const net::JsonValue& flightz) {
  const double dt =
      std::max(std::chrono::duration<double>(cur.taken - prev.taken).count(), 1e-9);
  const auto rate = [&](const std::string& name) {
    return static_cast<double>(counter_delta(cur, prev, name)) / dt;
  };

  os << "lamps top — " << host << ':' << port << "   uptime " << std::fixed
     << std::setprecision(1) << cur.uptime_s << "s   "
     << (cur.draining ? "DRAINING" : "accepting") << "   scrape "
     << std::setprecision(2) << cur.scrape_rtt_ms << " ms\n\n";

  os << std::setprecision(1) << "  req/s " << rate("serve.requests_total") << "   ok/s "
     << rate("serve.requests_ok") << "   computed/s " << rate("serve.requests_computed")
     << "   shed/s " << rate("serve.requests_overloaded") << "   errors/s "
     << rate("serve.requests_bad_request") + rate("serve.requests_internal_error")
     << '\n';

  const std::uint64_t hits = counter_delta(cur, prev, "serve.cache_hits") +
                             counter_delta(cur, prev, "serve.singleflight_hits");
  const std::uint64_t lookups = hits + counter_delta(cur, prev, "serve.cache_misses");
  os << "  cache hit " << (lookups > 0 ? 100.0 * static_cast<double>(hits) /
                                             static_cast<double>(lookups)
                                       : 0.0)
     << "% of " << lookups << " lookups   slow "
     << counter_delta(cur, prev, "serve.slow_requests") << "   flight drops "
     << counter_delta(cur, prev, "flight.dropped_records") << '\n';

  os << "  p50/p95/p99 ms   total " << phase_quantiles(cur, prev, "serve.request_seconds")
     << "   queue " << phase_quantiles(cur, prev, "serve.queue_seconds") << "   compute "
     << phase_quantiles(cur, prev, "serve.compute_seconds") << "   write "
     << phase_quantiles(cur, prev, "serve.write_seconds") << '\n';

  const double pool_size = healthz.get_number("pool_size", 0.0);
  const double pool_active = healthz.get_number("pool_active", 0.0);
  os << "  pool " << pool_active << '/' << pool_size << " active, "
     << healthz.get_number("pool_queued", 0.0) << " queued   pending "
     << healthz.get_number("pending", 0.0) << '/' << healthz.get_number("max_pending", 0.0)
     << "   connections " << healthz.get_number("connections", 0.0) << '\n';

  if (const net::JsonValue* rc = cachez.get("result_cache"); rc != nullptr) {
    os << "  result cache " << rc->get_number("size", 0.0) << '/'
       << rc->get_number("capacity", 0.0);
  }
  if (const net::JsonValue* bank = cachez.get("schedule_bank"); bank != nullptr) {
    os << "   schedule bank " << bank->get_number("size", 0.0) << '/'
       << bank->get_number("capacity", 0.0) << " (lease hits "
       << bank->get_number("lease_hits", 0.0) << ")";
  }
  os << "\n\n";

  if (const net::JsonValue* records = flightz.get("records");
      records != nullptr && records->is_array() && !records->items().empty()) {
    os << "  recent flights (newest first):\n  " << std::left << std::setw(8) << "req"
       << std::setw(14) << "outcome" << std::right << std::setw(10) << "total_ms"
       << std::setw(10) << "queue_ms" << std::setw(12) << "compute_ms" << std::setw(9)
       << "bytes" << '\n';
    for (const net::JsonValue& r : records->items()) {
      os << "  " << std::left << std::setw(8)
         << static_cast<std::uint64_t>(r.get_number("req", 0.0)) << std::setw(14)
         << r.get_string("outcome", "?") << std::right << std::fixed
         << std::setprecision(2) << std::setw(10) << r.get_number("total_ms", 0.0)
         << std::setw(10) << r.get_number("queue_ms", 0.0) << std::setw(12)
         << r.get_number("compute_ms", 0.0) << std::setw(9)
         << static_cast<std::uint64_t>(r.get_number("bytes", 0.0)) << '\n';
    }
  }
  os.flush();
}

int cmd_top(int argc, const char* const* argv) {
  std::size_t port = 0;
  std::string host = "127.0.0.1";
  double interval = 2.0;
  std::size_t samples = 0;
  std::size_t flights = 5;
  bool once = false;
  CliParser cli(
      "Live dashboard over a running `lamps serve`: polls the statsz / "
      "healthz / cachez / flightz admin queries and renders req/s, phase "
      "latency quantiles, cache hit rates and pool saturation "
      "(docs/observability.md)");
  cli.add_option("port", "daemon TCP port (required)", &port);
  cli.add_option("host", "daemon host", &host);
  cli.add_option("interval", "seconds between scrapes", &interval);
  cli.add_option("samples", "stop after this many dashboard frames, 0 = until ^C",
                 &samples);
  cli.add_option("flights", "recent flight-recorder rows to show", &flights);
  cli.add_flag("once",
               "print a single plain-text scrape (no rates; includes "
               "scrape_rtt_ms) and exit", &once);
  if (!cli.parse(argc, argv, std::cerr)) return 1;
  if (port == 0 || port > 65535) {
    std::cerr << "--port is required (1..65535)\n";
    return 1;
  }
  interval = std::max(interval, 0.1);

  const Socket sock = connect_tcp(static_cast<std::uint16_t>(port), host);
  LineReader reader(sock.fd());

  TopSample prev = scrape_statsz(sock, reader);
  if (once) {
    const net::JsonValue healthz = admin_query(sock, reader, "healthz");
    const net::JsonValue cachez = admin_query(sock, reader, "cachez");
    const net::JsonValue flightz = admin_query(
        sock, reader, "{\"cmd\":\"flightz\",\"limit\":" + std::to_string(flights) + "}");
    // Rates need two scrapes; a one-shot prints absolutes against an
    // empty baseline plus the machine-greppable scrape RTT line.
    print_top_sample(std::cout, host, port, prev, TopSample{}, healthz, cachez, flightz);
    std::cout << "scrape_rtt_ms " << std::fixed << std::setprecision(3)
              << prev.scrape_rtt_ms << '\n';
    return 0;
  }

  for (std::size_t frame = 0; samples == 0 || frame < samples; ++frame) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    TopSample cur = scrape_statsz(sock, reader);
    const net::JsonValue healthz = admin_query(sock, reader, "healthz");
    const net::JsonValue cachez = admin_query(sock, reader, "cachez");
    const net::JsonValue flightz = admin_query(
        sock, reader, "{\"cmd\":\"flightz\",\"limit\":" + std::to_string(flights) + "}");
    std::cout << "\033[2J\033[H";  // clear + home: a live refreshing frame
    print_top_sample(std::cout, host, port, cur, prev, healthz, cachez, flightz);
    const bool draining = cur.draining;
    prev = std::move(cur);
    if (draining) break;
  }
  return 0;
}

void print_root_usage(std::ostream& os) {
  os << "lamps — leakage-aware multiprocessor scheduling toolkit\n\n"
        "Usage: lamps <command> [options]\n\n"
        "Commands:\n"
        "  ladder     print the DVS operating points\n"
        "  gen        generate a task graph, write .stg\n"
        "  schedule   schedule an .stg file, report energy per approach\n"
        "  sweep      energy vs processor count for an .stg file\n"
        "  simulate   execute a LAMPS+PS plan under execution-time variability\n"
        "  robust     Monte-Carlo robustness report (jitter/leakage/wake faults)\n"
        "  pareto     energy/deadline trade-off curve for an .stg file\n"
        "  serve      JSON-lines scheduling daemon over TCP (docs/serving.md)\n"
        "  top        live dashboard over a running daemon's admin endpoints\n\n"
        "Run 'lamps <command> --help' for the command's options.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_root_usage(std::cerr);
    return 1;
  }
  const std::string_view cmd = argv[1];
  try {
    if (cmd == "ladder") return cmd_ladder(argc - 1, argv + 1);
    if (cmd == "gen") return cmd_gen(argc - 1, argv + 1);
    if (cmd == "schedule") return cmd_schedule(argc - 1, argv + 1);
    if (cmd == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (cmd == "simulate") return cmd_simulate(argc - 1, argv + 1);
    if (cmd == "robust") return cmd_robust(argc - 1, argv + 1);
    if (cmd == "pareto") return cmd_pareto(argc - 1, argv + 1);
    if (cmd == "serve") return cmd_serve(argc - 1, argv + 1);
    if (cmd == "top") return cmd_top(argc - 1, argv + 1);
    if (cmd == "--help" || cmd == "-h") {
      print_root_usage(std::cout);
      return 0;
    }
  } catch (const lamps::Error& e) {
    // Typed taxonomy errors map to documented exit codes (docs/robustness.md).
    std::cerr << "error: " << e.what() << '\n';
    return lamps::exit_code_for(e.code());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  std::cerr << "unknown command: " << cmd << "\n\n";
  print_root_usage(std::cerr);
  return 1;
}
