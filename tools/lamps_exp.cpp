// lamps_exp — run a declarative experiment described by an INI file.
//
// Usage: lamps_exp --config experiment.ini
//        lamps_exp --config - < experiment.ini
//
// See src/exp/experiment.hpp for the configuration schema and
// data/experiment.ini for a ready-to-run example.
#include <fstream>
#include <iostream>

#include "exp/experiment.hpp"
#include "util/cli.hpp"
#include "util/obs_cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::string config = "data/experiment.ini";
  ObsOptions oo;
  CliParser cli("Run a config-driven scheduling experiment");
  cli.add_option("config", "INI file describing the experiment ('-' = stdin)", &config);
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  try {
    return run_observed(oo, "exp/run", [&]() -> int {
      exp::Ini ini = [&] {
        if (config == "-") return exp::Ini::parse(std::cin);
        std::ifstream is(config);
        if (!is) throw std::runtime_error("cannot open config: " + config);
        return exp::Ini::parse(is);
      }();
      const exp::ExperimentSpec spec = exp::ExperimentSpec::from_ini(ini);
      const Stopwatch watch;
      (void)exp::run_experiment(spec, std::cout);
      std::cout << "total wall clock: " << fmt_fixed(watch.elapsed_seconds(), 3)
                << " s\n";
      return 0;
    });
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
