// lamps_exp — run a declarative experiment described by an INI file.
//
// Usage: lamps_exp --config experiment.ini
//        lamps_exp --config - < experiment.ini
//        lamps_exp --config experiment.ini --resume     # continue a killed run
//
// Exit codes (see docs/robustness.md):
//   0  success                      4  timeout / cancelled
//   1  unhandled internal error     5  I/O failure
//   2  input / configuration error  6  --strict and some cells failed
//   3  validation error
//
// See src/exp/experiment.hpp for the configuration schema and
// data/experiment.ini for a ready-to-run example.
#include <iostream>

#include "exp/experiment.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"
#include "util/obs_cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lamps;

  std::string config = "data/experiment.ini";
  bool resume = false;
  bool strict = false;
  double cell_timeout = -1.0;
  ObsOptions oo;
  CliParser cli("Run a config-driven scheduling experiment");
  cli.add_option("config", "INI file describing the experiment ('-' = stdin)", &config);
  cli.add_flag("resume",
               "replay completed cells from <csv_prefix>.journal.jsonl and re-run "
               "only failed/missing ones", &resume);
  cli.add_flag("strict", "exit with code 6 when any cell failed or timed out", &strict);
  cli.add_option("cell-timeout",
                 "per-cell watchdog budget in seconds, overrides the INI "
                 "(negative = use INI value, 0 = unlimited)", &cell_timeout);
  oo.register_flags(cli);
  if (!cli.parse(argc, argv, std::cerr)) return 1;

  try {
    return run_observed(oo, "exp/run", [&]() -> int {
      const exp::Ini ini = config == "-" ? exp::Ini::parse(std::cin, "<stdin>")
                                         : exp::Ini::parse_file(config);
      exp::ExperimentSpec spec = exp::ExperimentSpec::from_ini(ini);
      spec.resume = resume;
      if (cell_timeout >= 0.0) spec.cell_timeout_seconds = cell_timeout;
      const Stopwatch watch;
      const exp::ExperimentOutput out = exp::run_experiment(spec, std::cout);
      std::cout << "total wall clock: " << fmt_fixed(watch.elapsed_seconds(), 3)
                << " s\n";
      if (strict && out.cells.bad() > 0) {
        std::cerr << "strict mode: " << out.cells.bad()
                  << " cell(s) failed or timed out\n";
        return kExitPartialFailure;
      }
      return 0;
    });
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return exit_code_for(e.code());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
