// lamps_loadgen — concurrent load generator and correctness checker for
// `lamps serve` (docs/serving.md).
//
// Generates a corpus of random STG graphs, fires them as inline JSON-lines
// requests over N parallel connections (closed-loop by default, open-loop
// paced with --rate), and measures the end-to-end latency distribution and
// throughput.  With --check (default on) every response's "result" object
// is compared byte-for-byte against a direct in-process
// core::run_service_request call on the identical request — the serve
// path's bit-exactness contract.
//
// By default it self-hosts a net::Server on an ephemeral loopback port so
// a single binary benchmarks the full TCP round trip; --port targets an
// already-running daemon instead.  A JSON report (--json-out, e.g.
// results/BENCH_serve.json) captures the run for CI trending.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/request.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "stg/format.hpp"
#include "stg/random_gen.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace {

using namespace lamps;
using Clock = std::chrono::steady_clock;

struct RequestSpec {
  std::string line;      ///< the JSON-lines request, newline-terminated
  std::string expected;  ///< result_json of the direct computation
};

struct ConnStats {
  std::vector<double> latencies_s;
  /// Completion time of each response relative to the shared run start —
  /// parallel to latencies_s; the per-second timeline buckets on this.
  std::vector<double> completed_at_s;
  std::size_t ok{0};
  std::size_t cached{0};
  std::size_t errors{0};
  std::size_t mismatches{0};
};

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       std::ceil(q * static_cast<double>(sorted.size())) - 1.0));
  return sorted[idx];
}

/// One client connection: sends its request sequence (paced when
/// `interval_s > 0`, pipelined open-loop; otherwise closed-loop) and
/// validates the in-order responses.
void run_connection(std::uint16_t port, const std::vector<RequestSpec>& corpus,
                    std::size_t first, std::size_t count, bool check,
                    double interval_s, Clock::time_point run_t0, ConnStats& stats) {
  const Socket sock = connect_tcp(port);
  LineReader reader(sock.fd());
  std::vector<Clock::time_point> send_times(count);
  std::string response;

  std::size_t sent = 0;
  std::size_t received = 0;
  const auto t0 = Clock::now();
  auto consume_response = [&](std::size_t i) {
    if (reader.read_line(response) != LineReader::Status::kLine) {
      ++stats.errors;
      return false;
    }
    const auto now = Clock::now();
    stats.latencies_s.push_back(
        std::chrono::duration<double>(now - send_times[i]).count());
    stats.completed_at_s.push_back(
        std::chrono::duration<double>(now - run_t0).count());
    if (response.find("\"ok\":true") == std::string::npos) {
      ++stats.errors;
      return true;
    }
    ++stats.ok;
    if (response.find("\"cached\":true") != std::string::npos) ++stats.cached;
    if (check &&
        net::extract_result_json(response) != corpus[(first + i) % corpus.size()].expected)
      ++stats.mismatches;
    return true;
  };

  bool alive = true;
  while (sent < count && alive) {
    if (interval_s > 0.0) {
      // Open-loop: hold the schedule even when responses lag behind.
      const auto due = t0 + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(
                                    static_cast<double>(sent) * interval_s));
      std::this_thread::sleep_until(due);
    }
    send_times[sent] = Clock::now();
    if (!sock.send_all(corpus[(first + sent) % corpus.size()].line)) {
      stats.errors += count - sent;
      alive = false;
      break;
    }
    ++sent;
    if (interval_s <= 0.0) {  // closed-loop: one in flight per connection
      if (!consume_response(received)) {
        stats.errors += sent - received - 1;
        alive = false;
        break;
      }
      ++received;
    }
  }
  while (alive && received < sent) {
    if (!consume_response(received)) {
      stats.errors += sent - received - 1;
      break;
    }
    ++received;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t port = 0;
  std::size_t connections = 8;
  std::size_t requests = 256;
  std::size_t tasks = 100;
  std::size_t corpus_size = 8;
  std::size_t server_threads = 0;
  double rate = 0.0;
  double deadline_factor = 2.0;
  bool no_check = false;
  bool serve_telemetry = false;
  std::string json_out;
  CliParser cli(
      "Concurrent load generator for `lamps serve`: random-STG corpus, "
      "latency histogram, throughput, and a bit-exactness check against "
      "direct in-process scheduling");
  cli.add_option("port", "target daemon port; 0 self-hosts a server in-process", &port);
  cli.add_option("connections", "parallel client connections", &connections);
  cli.add_option("requests", "total requests across all connections", &requests);
  cli.add_option("tasks", "tasks per corpus graph", &tasks);
  cli.add_option("corpus", "distinct graphs in the corpus (cache/single-flight "
                           "pressure rises as this shrinks)", &corpus_size);
  cli.add_option("server-threads",
                 "self-hosted server workers, 0 = hardware concurrency", &server_threads);
  cli.add_option("rate", "open-loop request rate per connection [req/s], 0 = closed-loop",
                 &rate);
  cli.add_option("deadline-factor", "deadline as a multiple of the CPL", &deadline_factor);
  cli.add_flag("no-check", "skip the bit-exactness comparison", &no_check);
  cli.add_flag("serve-telemetry",
               "run the self-hosted server with the full telemetry plane on "
               "(1 s metrics flusher embedded in --json-out as "
               "metrics_timeline, flight recorder, slow-request promotion)",
               &serve_telemetry);
  cli.add_option("json-out", "write the benchmark report JSON here", &json_out);
  if (!cli.parse(argc, argv, std::cerr)) return 1;
  if (connections == 0 || requests == 0 || corpus_size == 0) {
    std::cerr << "connections, requests and corpus must be >= 1\n";
    return 1;
  }

  try {
    const power::PowerModel model;
    const power::DvsLadder ladder(model);

    // Corpus: every (graph, strategy) pair is prepared once — the JSON
    // line the clients send and the expected result payload computed
    // directly, bypassing the network.
    std::vector<RequestSpec> corpus;
    corpus.reserve(corpus_size);
    for (std::size_t i = 0; i < corpus_size; ++i) {
      stg::RandomGraphSpec spec;
      spec.name = "loadgen-" + std::to_string(i);
      spec.num_tasks = tasks;
      spec.seed = i + 1;
      const graph::TaskGraph g = stg::generate_random(spec);
      std::ostringstream stg_text;
      stg::write_stg(g, stg_text);
      const core::StrategyKind strategy = core::kAllStrategies[i % core::kAllStrategies.size()];

      std::ostringstream line;
      line << "{\"id\":" << i << ",\"stg\":";
      write_json_string(line, stg_text.str());
      line << ",\"strategy\":";
      write_json_string(line, core::to_string(strategy));
      line << ",\"deadline_factor\":" << json_double(deadline_factor) << "}\n";

      RequestSpec rs;
      rs.line = line.str();
      if (!no_check) {
        const net::ParsedRequest parsed =
            net::parse_schedule_request(rs.line, model);  // the server's own code path
        rs.expected = net::result_json(
            core::run_service_request(parsed.request, model, ladder), ladder);
      }
      corpus.push_back(std::move(rs));
    }

    std::unique_ptr<net::Server> self_hosted;
    std::vector<std::string> metric_samples;
    std::mutex metric_samples_mutex;
    auto target_port = static_cast<std::uint16_t>(port);
    if (port == 0) {
      net::ServerConfig cfg;
      cfg.threads = server_threads;
      if (serve_telemetry) {
        cfg.metrics_interval_s = 1.0;
        cfg.slow_request_s = 0.25;
        cfg.metrics_hook = [&](const std::string& line) {
          std::scoped_lock lock(metric_samples_mutex);
          metric_samples.push_back(line);
        };
      }
      self_hosted = std::make_unique<net::Server>(cfg);
      self_hosted->start();
      target_port = self_hosted->port();
      std::cerr << "self-hosted lamps serve on 127.0.0.1:" << target_port
                << (serve_telemetry ? " (telemetry on)" : "") << '\n';
    }

    const double interval_s = rate > 0.0 ? 1.0 / rate : 0.0;
    const std::size_t per_conn = (requests + connections - 1) / connections;
    std::vector<ConnStats> stats(connections);
    std::vector<std::thread> clients;
    clients.reserve(connections);
    const auto t0 = Clock::now();
    for (std::size_t c = 0; c < connections; ++c) {
      const std::size_t begin = c * per_conn;
      const std::size_t count = std::min(per_conn, requests - std::min(requests, begin));
      if (count == 0) break;
      clients.emplace_back([&, c, begin, count] {
        run_connection(target_port, corpus, begin, count, !no_check, interval_s, t0,
                       stats[c]);
      });
    }
    for (auto& t : clients) t.join();
    const double elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();

    std::uint64_t singleflight = 0;
    std::uint64_t cache_hits = 0;
    if (self_hosted) {
      self_hosted->request_drain();
      self_hosted->wait();
      singleflight = obs::Registry::global().counter_value("serve.singleflight_hits");
      cache_hits = obs::Registry::global().counter_value("serve.cache_hits");
      self_hosted.reset();
    }

    ConnStats total;
    for (const auto& s : stats) {
      total.ok += s.ok;
      total.cached += s.cached;
      total.errors += s.errors;
      total.mismatches += s.mismatches;
      total.latencies_s.insert(total.latencies_s.end(), s.latencies_s.begin(),
                               s.latencies_s.end());
    }
    // Per-second timeline: responses bucketed by the wall-clock second of
    // the run they completed in — correlates with the server-side
    // metrics_timeline samples when --serve-telemetry is on.
    std::map<std::size_t, std::vector<double>> timeline;
    for (const auto& s : stats)
      for (std::size_t i = 0; i < s.completed_at_s.size(); ++i)
        timeline[static_cast<std::size_t>(std::max(0.0, s.completed_at_s[i]))]
            .push_back(s.latencies_s[i]);

    std::sort(total.latencies_s.begin(), total.latencies_s.end());
    double sum = 0.0;
    for (const double v : total.latencies_s) sum += v;
    const double mean_s =
        total.latencies_s.empty()
            ? 0.0
            : sum / static_cast<double>(total.latencies_s.size());
    const double throughput =
        elapsed_s > 0.0 ? static_cast<double>(total.ok) / elapsed_s : 0.0;

    std::cout << "requests: " << requests << " over " << clients.size()
              << " connections (" << (interval_s > 0.0 ? "open" : "closed")
              << "-loop)\n"
              << "ok: " << total.ok << "  cached: " << total.cached
              << "  errors: " << total.errors << "  mismatches: " << total.mismatches
              << '\n'
              << "throughput: " << throughput << " req/s  elapsed: " << elapsed_s
              << " s\n"
              << "latency ms  mean " << mean_s * 1e3 << "  p50 "
              << quantile(total.latencies_s, 0.5) * 1e3 << "  p90 "
              << quantile(total.latencies_s, 0.9) * 1e3 << "  p99 "
              << quantile(total.latencies_s, 0.99) * 1e3 << "  max "
              << (total.latencies_s.empty() ? 0.0 : total.latencies_s.back()) * 1e3
              << '\n';
    if (self_hosted != nullptr || port == 0)
      std::cout << "server: cache_hits " << cache_hits << "  singleflight_hits "
                << singleflight << '\n';

    if (!json_out.empty()) {
      std::ofstream os(json_out);
      if (!os) {
        std::cerr << "cannot write " << json_out << '\n';
        return 1;
      }
      os << "{\n"
         << "  \"bench\": \"serve\",\n"
         << "  \"requests\": " << requests << ",\n"
         << "  \"connections\": " << clients.size() << ",\n"
         << "  \"corpus\": " << corpus_size << ",\n"
         << "  \"tasks_per_graph\": " << tasks << ",\n"
         << "  \"mode\": \"" << (interval_s > 0.0 ? "open" : "closed") << "-loop\",\n"
         << "  \"ok\": " << total.ok << ",\n"
         << "  \"cached\": " << total.cached << ",\n"
         << "  \"errors\": " << total.errors << ",\n"
         << "  \"check_mismatches\": " << total.mismatches << ",\n"
         << "  \"cache_hits\": " << cache_hits << ",\n"
         << "  \"singleflight_hits\": " << singleflight << ",\n"
         << "  \"elapsed_s\": " << json_double(elapsed_s) << ",\n"
         << "  \"throughput_rps\": " << json_double(throughput) << ",\n"
         << "  \"latency_ms\": {\n"
         << "    \"mean\": " << json_double(mean_s * 1e3) << ",\n"
         << "    \"p50\": " << json_double(quantile(total.latencies_s, 0.5) * 1e3)
         << ",\n"
         << "    \"p90\": " << json_double(quantile(total.latencies_s, 0.9) * 1e3)
         << ",\n"
         << "    \"p99\": " << json_double(quantile(total.latencies_s, 0.99) * 1e3)
         << ",\n"
         << "    \"max\": "
         << json_double(
                (total.latencies_s.empty() ? 0.0 : total.latencies_s.back()) * 1e3)
         << "\n  },\n"
         << "  \"telemetry\": " << (serve_telemetry ? "true" : "false") << ",\n"
         << "  \"timeline\": [";
      {
        const char* sep = "\n";
        for (auto& [sec, lats] : timeline) {
          std::sort(lats.begin(), lats.end());
          os << sep << "    {\"t_s\": " << sec << ", \"requests\": " << lats.size()
             << ", \"p50_ms\": " << json_double(quantile(lats, 0.5) * 1e3)
             << ", \"p99_ms\": " << json_double(quantile(lats, 0.99) * 1e3) << "}";
          sep = ",\n";
        }
      }
      os << "\n  ],\n"
         << "  \"metrics_timeline\": [";
      {
        const char* sep = "\n";
        for (const std::string& sample : metric_samples) {
          os << sep << "    " << sample;
          sep = ",\n";
        }
      }
      os << "\n  ]\n}\n";
      std::cerr << "wrote " << json_out << '\n';
    }

    if (total.mismatches > 0 || total.errors > 0) return 3;
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return exit_code_for(e.code());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
