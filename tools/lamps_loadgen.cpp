// lamps_loadgen — concurrent load generator and correctness checker for
// `lamps serve` (docs/serving.md).
//
// Generates a corpus of random STG graphs, fires them as inline JSON-lines
// requests over N parallel connections (closed-loop by default, open-loop
// paced with --rate), and measures the end-to-end latency distribution and
// throughput.  With --check (default on) every response's "result" object
// is compared byte-for-byte against a direct in-process
// core::run_service_request call on the identical request — the serve
// path's bit-exactness contract.
//
// The closed-loop client is a well-behaved retrying client: bounded
// connect timeouts, reconnects on transport failures, and exponential
// backoff + jitter on retryable typed errors (overloaded /
// deadline_exceeded / draining).  Eventual success is reported separately
// from first-try success, which is what the chaos soak (CI) gates on: a
// daemon under seeded fault injection must still answer ≥ 99 % of
// requests byte-identically once clients retry.
//
// By default it self-hosts a net::Server on an ephemeral loopback port so
// a single binary benchmarks the full TCP round trip; --port targets an
// already-running daemon instead (probed with bounded retries first — a
// dead daemon is a clean E_IO exit, not a hang).  A JSON report
// (--json-out, e.g. results/BENCH_serve.json) captures the run for CI
// trending.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/request.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "stg/format.hpp"
#include "stg/random_gen.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"
#include "util/faultinject.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

namespace {

using namespace lamps;
using Clock = std::chrono::steady_clock;

struct RequestSpec {
  std::string line;      ///< the JSON-lines request, newline-terminated
  std::string expected;  ///< result_json of the direct computation
};

struct ConnStats {
  std::vector<double> latencies_s;
  /// Completion time of each response relative to the shared run start —
  /// parallel to latencies_s; the per-second timeline buckets on this.
  std::vector<double> completed_at_s;
  std::size_t ok{0};
  std::size_t first_try_ok{0};
  std::size_t retried_ok{0};
  std::size_t cached{0};
  std::size_t errors{0};      ///< permanent typed errors (bad_request, internal)
  std::size_t gave_up{0};     ///< retry budget exhausted
  std::size_t retries_total{0};
  std::size_t reconnects{0};
  std::size_t mismatches{0};
};

/// Retry/transport knobs of the closed-loop client.
struct RetryOptions {
  int connect_timeout_ms{2000};
  std::size_t connect_retries{5};
  double backoff_ms{25.0};     ///< base; attempt k sleeps base * 2^k + jitter
  std::size_t retries{4};      ///< extra attempts per request
  int response_timeout_ms{30'000};
  std::uint64_t seed{1};       ///< jitter stream master seed
};

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       std::ceil(q * static_cast<double>(sorted.size())) - 1.0));
  return sorted[idx];
}

void backoff_sleep(Rng& rng, double base_ms, std::size_t attempt) {
  // Full jitter on top of the exponential term: retrying clients must not
  // re-converge on the daemon in lockstep after a shared overload event.
  const double exp_ms = base_ms * static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(attempt, 10));
  const double sleep_ms = exp_ms + rng.uniform_real(0.0, exp_ms);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(sleep_ms));
}

enum class RecvResult { kOk, kTimeout, kClosed };

/// Reads one response line with a wall-clock bound (-1 = none).  kClosed
/// covers EOF and transport errors (including server-injected resets).
RecvResult recv_line(LineReader& reader, int fd, int timeout_ms, std::string& out) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    // Only newline-terminated lines count as responses.  The server always
    // terminates what it sends, so a fragment followed by EOF is a torn
    // response from a dying connection — it must surface as a transport
    // failure (retry), never as data (LineReader's final-line flush would
    // otherwise hand us a truncated payload that can even carry "ok":true).
    if (reader.has_buffered_line()) {
      const LineReader::Status status = reader.next_line(out);
      if (status == LineReader::Status::kLine) return RecvResult::kOk;
      if (status != LineReader::Status::kAgain) return RecvResult::kClosed;
      continue;
    }
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return RecvResult::kTimeout;
      wait_ms = static_cast<int>(left.count());
    }
    if ((poll_readable(fd, -1, wait_ms) & 1u) == 0) {
      if (timeout_ms >= 0 && Clock::now() >= deadline) return RecvResult::kTimeout;
      continue;  // EINTR
    }
    const LineReader::Status filled = reader.fill();
    // kEof here means the buffer holds no complete line (checked above):
    // whatever remains is an unterminated fragment, i.e. a torn response.
    if (filled != LineReader::Status::kAgain) return RecvResult::kClosed;
  }
}

bool is_retryable_error(const std::string& response) {
  return response.find("\"error\":\"overloaded\"") != std::string::npos ||
         response.find("\"error\":\"deadline_exceeded\"") != std::string::npos ||
         response.find("\"error\":\"draining\"") != std::string::npos;
}

/// Closed-loop retrying client: one request in flight, transport failures
/// reconnect, retryable typed errors back off and resend.  Latency is
/// measured per successful attempt (service latency, not retry queueing).
void run_connection_closed(std::uint16_t port, const std::vector<RequestSpec>& corpus,
                           std::size_t first, std::size_t count, bool check,
                           const RetryOptions& opts, Clock::time_point run_t0,
                           ConnStats& stats) {
  Rng rng = child_rng(opts.seed, first + 1);
  std::optional<Socket> sock;
  std::optional<LineReader> reader;
  std::string response;
  bool ever_connected = false;

  const auto ensure_connected = [&]() -> bool {
    if (sock.has_value()) return true;
    std::string error;
    for (std::size_t a = 0;; ++a) {
      sock = try_connect_tcp(port, "127.0.0.1", opts.connect_timeout_ms, &error);
      if (sock.has_value()) {
        reader.emplace(sock->fd());
        if (ever_connected) ++stats.reconnects;
        ever_connected = true;
        return true;
      }
      if (a + 1 >= opts.connect_retries) return false;
      backoff_sleep(rng, opts.backoff_ms, a);
    }
  };

  for (std::size_t i = 0; i < count; ++i) {
    const RequestSpec& spec = corpus[(first + i) % corpus.size()];
    bool done = false;
    for (std::size_t attempt = 0; attempt <= opts.retries; ++attempt) {
      const auto retry_or_break = [&]() -> bool {  // true = another attempt follows
        if (attempt >= opts.retries) return false;
        ++stats.retries_total;
        backoff_sleep(rng, opts.backoff_ms, attempt);
        return true;
      };
      if (!ensure_connected()) {
        // The daemon is unreachable; everything left would just burn the
        // connect budget again per request.
        stats.gave_up += count - i;
        return;
      }
      const auto sent_at = Clock::now();
      bool transport_ok = sock->send_all(spec.line);
      if (transport_ok) {
        transport_ok = recv_line(*reader, sock->fd(), opts.response_timeout_ms,
                                 response) == RecvResult::kOk;
      }
      if (!transport_ok) {
        sock.reset();
        reader.reset();
        if (retry_or_break()) continue;
        break;
      }
      const auto now = Clock::now();
      if (response.find("\"ok\":true") != std::string::npos) {
        stats.latencies_s.push_back(
            std::chrono::duration<double>(now - sent_at).count());
        stats.completed_at_s.push_back(
            std::chrono::duration<double>(now - run_t0).count());
        ++stats.ok;
        if (attempt == 0)
          ++stats.first_try_ok;
        else
          ++stats.retried_ok;
        if (response.find("\"cached\":true") != std::string::npos) ++stats.cached;
        if (check && net::extract_result_json(response) != spec.expected)
          ++stats.mismatches;
        done = true;
        break;
      }
      if (is_retryable_error(response)) {
        if (retry_or_break()) continue;
        break;
      }
      ++stats.errors;  // bad_request / too_large / internal: retrying won't help
      done = true;
      break;
    }
    if (!done) ++stats.gave_up;
  }
}

/// Open-loop (--rate) legacy client: pipelined sends on a fixed schedule,
/// no retries — measures what the daemon does under a fixed offered load.
void run_connection_open(std::uint16_t port, const std::vector<RequestSpec>& corpus,
                         std::size_t first, std::size_t count, bool check,
                         double interval_s, Clock::time_point run_t0,
                         ConnStats& stats) {
  const Socket sock = connect_tcp(port);
  LineReader reader(sock.fd());
  std::vector<Clock::time_point> send_times(count);
  std::string response;

  std::size_t sent = 0;
  std::size_t received = 0;
  const auto t0 = Clock::now();
  auto consume_response = [&](std::size_t i) {
    if (reader.read_line(response) != LineReader::Status::kLine) {
      ++stats.errors;
      return false;
    }
    const auto now = Clock::now();
    stats.latencies_s.push_back(
        std::chrono::duration<double>(now - send_times[i]).count());
    stats.completed_at_s.push_back(
        std::chrono::duration<double>(now - run_t0).count());
    if (response.find("\"ok\":true") == std::string::npos) {
      ++stats.errors;
      return true;
    }
    ++stats.ok;
    ++stats.first_try_ok;
    if (response.find("\"cached\":true") != std::string::npos) ++stats.cached;
    if (check &&
        net::extract_result_json(response) != corpus[(first + i) % corpus.size()].expected)
      ++stats.mismatches;
    return true;
  };

  bool alive = true;
  while (sent < count && alive) {
    // Open-loop: hold the schedule even when responses lag behind.
    const auto due = t0 + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  static_cast<double>(sent) * interval_s));
    std::this_thread::sleep_until(due);
    send_times[sent] = Clock::now();
    if (!sock.send_all(corpus[(first + sent) % corpus.size()].line)) {
      stats.errors += count - sent;
      alive = false;
      break;
    }
    ++sent;
  }
  while (alive && received < sent) {
    if (!consume_response(received)) {
      stats.errors += sent - received - 1;
      break;
    }
    ++received;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t port = 0;
  std::size_t connections = 8;
  std::size_t requests = 256;
  std::size_t tasks = 100;
  std::size_t corpus_size = 8;
  std::size_t server_threads = 0;
  double rate = 0.0;
  double deadline_factor = 2.0;
  bool no_check = false;
  bool serve_telemetry = false;
  std::string json_out;
  double connect_timeout_ms = 2000.0;
  std::size_t connect_retries = 5;
  double retry_backoff_ms = 25.0;
  std::size_t retries = 4;
  double response_timeout_ms = 30'000.0;
  double request_deadline_ms = 0.0;
  std::size_t jitter_seed = 1;
  std::string chaos_spec;
  CliParser cli(
      "Concurrent load generator for `lamps serve`: random-STG corpus, "
      "latency histogram, throughput, a retrying closed-loop client, and a "
      "bit-exactness check against direct in-process scheduling");
  cli.add_option("port", "target daemon port; 0 self-hosts a server in-process", &port);
  cli.add_option("connections", "parallel client connections", &connections);
  cli.add_option("requests", "total requests across all connections", &requests);
  cli.add_option("tasks", "tasks per corpus graph", &tasks);
  cli.add_option("corpus", "distinct graphs in the corpus (cache/single-flight "
                           "pressure rises as this shrinks)", &corpus_size);
  cli.add_option("server-threads",
                 "self-hosted server workers, 0 = hardware concurrency", &server_threads);
  cli.add_option("rate", "open-loop request rate per connection [req/s], 0 = closed-loop",
                 &rate);
  cli.add_option("deadline-factor", "deadline as a multiple of the CPL", &deadline_factor);
  cli.add_flag("no-check", "skip the bit-exactness comparison", &no_check);
  cli.add_flag("serve-telemetry",
               "run the self-hosted server with the full telemetry plane on "
               "(1 s metrics flusher embedded in --json-out as "
               "metrics_timeline, flight recorder, slow-request promotion)",
               &serve_telemetry);
  cli.add_option("json-out", "write the benchmark report JSON here", &json_out);
  cli.add_option("connect-timeout-ms", "TCP connect handshake bound", &connect_timeout_ms);
  cli.add_option("connect-retries",
                 "connection attempts (startup probe and reconnects) before "
                 "giving up", &connect_retries);
  cli.add_option("retry-backoff-ms",
                 "base retry backoff; attempt k sleeps base * 2^k + jitter",
                 &retry_backoff_ms);
  cli.add_option("retries",
                 "extra attempts per request on retryable errors "
                 "(overloaded / deadline_exceeded / transport), closed-loop only",
                 &retries);
  cli.add_option("response-timeout-ms",
                 "per-response wait bound in the closed-loop client, 0 = none",
                 &response_timeout_ms);
  cli.add_option("request-deadline-ms",
                 "attach this \"deadline_ms\" budget to every request, 0 = none",
                 &request_deadline_ms);
  cli.add_option("jitter-seed", "master seed of the deterministic backoff jitter",
                 &jitter_seed);
  cli.add_option("chaos-spec",
                 "self-hosted server fault-injection spec, e.g. "
                 "\"seed=3,short_read=0.3,write_reset=0.05\" (docs/serving.md)",
                 &chaos_spec);
  if (!cli.parse(argc, argv, std::cerr)) return 1;
  if (connections == 0 || requests == 0 || corpus_size == 0) {
    std::cerr << "connections, requests and corpus must be >= 1\n";
    return 1;
  }
  if (connect_retries == 0) connect_retries = 1;

  try {
    const power::PowerModel model;
    const power::DvsLadder ladder(model);

    // A dead daemon must be a clean failure, not a hang: probe the target
    // with bounded connects before doing any expensive corpus work.
    if (port != 0) {
      std::string probe_error;
      std::optional<Socket> probe;
      Rng probe_rng = child_rng(jitter_seed, 0);
      for (std::size_t a = 0; a < connect_retries && !probe; ++a) {
        if (a > 0) backoff_sleep(probe_rng, retry_backoff_ms, a - 1);
        probe = try_connect_tcp(static_cast<std::uint16_t>(port), "127.0.0.1",
                                static_cast<int>(connect_timeout_ms), &probe_error);
      }
      if (!probe) {
        std::cerr << "error: no daemon reachable on 127.0.0.1:" << port << " ("
                  << probe_error << " after " << connect_retries
                  << " attempts); is `lamps serve` running?\n";
        return exit_code_for(ErrorCode::kIo);
      }
    }

    // Corpus: every (graph, strategy) pair is prepared once — the JSON
    // line the clients send and the expected result payload computed
    // directly, bypassing the network.
    std::vector<RequestSpec> corpus;
    corpus.reserve(corpus_size);
    for (std::size_t i = 0; i < corpus_size; ++i) {
      stg::RandomGraphSpec spec;
      spec.name = "loadgen-" + std::to_string(i);
      spec.num_tasks = tasks;
      spec.seed = i + 1;
      const graph::TaskGraph g = stg::generate_random(spec);
      std::ostringstream stg_text;
      stg::write_stg(g, stg_text);
      const core::StrategyKind strategy = core::kAllStrategies[i % core::kAllStrategies.size()];

      std::ostringstream line;
      line << "{\"id\":" << i << ",\"stg\":";
      write_json_string(line, stg_text.str());
      line << ",\"strategy\":";
      write_json_string(line, core::to_string(strategy));
      line << ",\"deadline_factor\":" << json_double(deadline_factor);
      if (request_deadline_ms > 0.0)
        line << ",\"deadline_ms\":" << json_double(request_deadline_ms);
      line << "}\n";

      RequestSpec rs;
      rs.line = line.str();
      if (!no_check) {
        const net::ParsedRequest parsed =
            net::parse_schedule_request(rs.line, model);  // the server's own code path
        rs.expected = net::result_json(
            core::run_service_request(parsed.request, model, ladder), ladder);
      }
      corpus.push_back(std::move(rs));
    }

    std::unique_ptr<net::Server> self_hosted;
    std::vector<std::string> metric_samples;
    std::mutex metric_samples_mutex;
    auto target_port = static_cast<std::uint16_t>(port);
    if (port == 0) {
      net::ServerConfig cfg;
      cfg.threads = server_threads;
      if (serve_telemetry) {
        cfg.metrics_interval_s = 1.0;
        cfg.slow_request_s = 0.25;
        cfg.metrics_hook = [&](const std::string& line) {
          std::scoped_lock lock(metric_samples_mutex);
          metric_samples.push_back(line);
        };
      }
      if (!chaos_spec.empty())
        cfg.chaos = std::make_shared<FaultInjector>(parse_fault_spec(chaos_spec));
      self_hosted = std::make_unique<net::Server>(cfg);
      self_hosted->start();
      target_port = self_hosted->port();
      std::cerr << "self-hosted lamps serve on 127.0.0.1:" << target_port
                << (serve_telemetry ? " (telemetry on)" : "")
                << (cfg.chaos ? " (chaos on)" : "") << '\n';
    } else if (!chaos_spec.empty()) {
      std::cerr << "--chaos-spec only applies to the self-hosted server "
                   "(--port 0); pass it to `lamps serve` instead\n";
      return 1;
    }

    RetryOptions ropts;
    ropts.connect_timeout_ms = static_cast<int>(connect_timeout_ms);
    ropts.connect_retries = connect_retries;
    ropts.backoff_ms = retry_backoff_ms;
    ropts.retries = retries;
    ropts.response_timeout_ms =
        response_timeout_ms > 0.0 ? static_cast<int>(response_timeout_ms) : -1;
    ropts.seed = jitter_seed;

    const double interval_s = rate > 0.0 ? 1.0 / rate : 0.0;
    const std::size_t per_conn = (requests + connections - 1) / connections;
    std::vector<ConnStats> stats(connections);
    std::vector<std::thread> clients;
    clients.reserve(connections);
    const auto t0 = Clock::now();
    for (std::size_t c = 0; c < connections; ++c) {
      const std::size_t begin = c * per_conn;
      const std::size_t count = std::min(per_conn, requests - std::min(requests, begin));
      if (count == 0) break;
      clients.emplace_back([&, c, begin, count] {
        if (interval_s > 0.0)
          run_connection_open(target_port, corpus, begin, count, !no_check,
                              interval_s, t0, stats[c]);
        else
          run_connection_closed(target_port, corpus, begin, count, !no_check,
                                ropts, t0, stats[c]);
      });
    }
    for (auto& t : clients) t.join();
    const double elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();

    std::uint64_t singleflight = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t chaos_injected = 0;
    if (self_hosted) {
      self_hosted->request_drain();
      self_hosted->wait();
      singleflight = obs::Registry::global().counter_value("serve.singleflight_hits");
      cache_hits = obs::Registry::global().counter_value("serve.cache_hits");
      if (self_hosted->chaos() != nullptr)
        chaos_injected = self_hosted->chaos()->injected_total();
      self_hosted.reset();
    }

    ConnStats total;
    for (const auto& s : stats) {
      total.ok += s.ok;
      total.first_try_ok += s.first_try_ok;
      total.retried_ok += s.retried_ok;
      total.cached += s.cached;
      total.errors += s.errors;
      total.gave_up += s.gave_up;
      total.retries_total += s.retries_total;
      total.reconnects += s.reconnects;
      total.mismatches += s.mismatches;
      total.latencies_s.insert(total.latencies_s.end(), s.latencies_s.begin(),
                               s.latencies_s.end());
    }
    // Per-second timeline: responses bucketed by the wall-clock second of
    // the run they completed in — correlates with the server-side
    // metrics_timeline samples when --serve-telemetry is on.
    std::map<std::size_t, std::vector<double>> timeline;
    for (const auto& s : stats)
      for (std::size_t i = 0; i < s.completed_at_s.size(); ++i)
        timeline[static_cast<std::size_t>(std::max(0.0, s.completed_at_s[i]))]
            .push_back(s.latencies_s[i]);

    std::sort(total.latencies_s.begin(), total.latencies_s.end());
    double sum = 0.0;
    for (const double v : total.latencies_s) sum += v;
    const double mean_s =
        total.latencies_s.empty()
            ? 0.0
            : sum / static_cast<double>(total.latencies_s.size());
    const double throughput =
        elapsed_s > 0.0 ? static_cast<double>(total.ok) / elapsed_s : 0.0;
    const double denom = requests > 0 ? static_cast<double>(requests) : 1.0;

    std::cout << "requests: " << requests << " over " << clients.size()
              << " connections (" << (interval_s > 0.0 ? "open" : "closed")
              << "-loop)\n"
              << "ok: " << total.ok << "  cached: " << total.cached
              << "  errors: " << total.errors << "  gave_up: " << total.gave_up
              << "  mismatches: " << total.mismatches << '\n'
              << "eventual success: " << (static_cast<double>(total.ok) / denom) * 1e2
              << "%  first-try: "
              << (static_cast<double>(total.first_try_ok) / denom) * 1e2
              << "%  retries: " << total.retries_total
              << "  reconnects: " << total.reconnects << '\n'
              << "throughput: " << throughput << " req/s  elapsed: " << elapsed_s
              << " s\n"
              << "latency ms  mean " << mean_s * 1e3 << "  p50 "
              << quantile(total.latencies_s, 0.5) * 1e3 << "  p90 "
              << quantile(total.latencies_s, 0.9) * 1e3 << "  p99 "
              << quantile(total.latencies_s, 0.99) * 1e3 << "  max "
              << (total.latencies_s.empty() ? 0.0 : total.latencies_s.back()) * 1e3
              << '\n';
    if (self_hosted != nullptr || port == 0) {
      std::cout << "server: cache_hits " << cache_hits << "  singleflight_hits "
                << singleflight;
      if (!chaos_spec.empty())
        std::cout << "  chaos_injected " << chaos_injected;
      std::cout << '\n';
    }

    if (!json_out.empty()) {
      std::ofstream os(json_out);
      if (!os) {
        std::cerr << "cannot write " << json_out << '\n';
        return 1;
      }
      os << "{\n"
         << "  \"bench\": \"serve\",\n"
         << "  \"requests\": " << requests << ",\n"
         << "  \"connections\": " << clients.size() << ",\n"
         << "  \"corpus\": " << corpus_size << ",\n"
         << "  \"tasks_per_graph\": " << tasks << ",\n"
         << "  \"mode\": \"" << (interval_s > 0.0 ? "open" : "closed") << "-loop\",\n"
         << "  \"ok\": " << total.ok << ",\n"
         << "  \"first_try_ok\": " << total.first_try_ok << ",\n"
         << "  \"retried_ok\": " << total.retried_ok << ",\n"
         << "  \"cached\": " << total.cached << ",\n"
         << "  \"errors\": " << total.errors << ",\n"
         << "  \"gave_up\": " << total.gave_up << ",\n"
         << "  \"retries\": " << total.retries_total << ",\n"
         << "  \"reconnects\": " << total.reconnects << ",\n"
         << "  \"check_mismatches\": " << total.mismatches << ",\n"
         << "  \"cache_hits\": " << cache_hits << ",\n"
         << "  \"singleflight_hits\": " << singleflight << ",\n"
         << "  \"chaos_spec\": ";
      write_json_string(os, chaos_spec);
      os << ",\n"
         << "  \"chaos_injected\": " << chaos_injected << ",\n"
         << "  \"elapsed_s\": " << json_double(elapsed_s) << ",\n"
         << "  \"throughput_rps\": " << json_double(throughput) << ",\n"
         << "  \"latency_ms\": {\n"
         << "    \"mean\": " << json_double(mean_s * 1e3) << ",\n"
         << "    \"p50\": " << json_double(quantile(total.latencies_s, 0.5) * 1e3)
         << ",\n"
         << "    \"p90\": " << json_double(quantile(total.latencies_s, 0.9) * 1e3)
         << ",\n"
         << "    \"p99\": " << json_double(quantile(total.latencies_s, 0.99) * 1e3)
         << ",\n"
         << "    \"max\": "
         << json_double(
                (total.latencies_s.empty() ? 0.0 : total.latencies_s.back()) * 1e3)
         << "\n  },\n"
         << "  \"telemetry\": " << (serve_telemetry ? "true" : "false") << ",\n"
         << "  \"timeline\": [";
      {
        const char* sep = "\n";
        for (auto& [sec, lats] : timeline) {
          std::sort(lats.begin(), lats.end());
          os << sep << "    {\"t_s\": " << sec << ", \"requests\": " << lats.size()
             << ", \"p50_ms\": " << json_double(quantile(lats, 0.5) * 1e3)
             << ", \"p99_ms\": " << json_double(quantile(lats, 0.99) * 1e3) << "}";
          sep = ",\n";
        }
      }
      os << "\n  ],\n"
         << "  \"metrics_timeline\": [";
      {
        const char* sep = "\n";
        for (const std::string& sample : metric_samples) {
          os << sep << "    " << sample;
          sep = ",\n";
        }
      }
      os << "\n  ]\n}\n";
      std::cerr << "wrote " << json_out << '\n';
    }

    if (total.mismatches > 0 || total.errors > 0 || total.gave_up > 0) return 3;
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return exit_code_for(e.code());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
